"""Wire-level chaos injection over the 4-method transport seam.

:class:`ChaosTransport` wraps any transport implementing the seam shared by
:class:`~repro.sim.asyncio_runtime.InMemoryTransport` and
:class:`~repro.net.socket_transport.SocketTransport` — ``open`` / ``put`` /
``get`` / ``close`` moving ``(sender, message)`` pairs — and injects faults
on a declarative schedule:

* **delay windows** (:class:`~repro.faults.spec.DelaySpec`) — matching
  messages are delivered ``extra`` seconds late;
* **loss windows** (:class:`~repro.faults.spec.LossSpec`) — matching
  messages are dropped independently with the window's probability, drawn
  from a seeded per-channel stream so runs are reproducible;
* **partitions** (:class:`~repro.faults.spec.PartitionSpec`) — messages
  crossing partition islands are *held until the window heals* (severed,
  never dropped — the paper's asynchronous adversary may delay but not
  drop), then released;
* **connection resets** (:class:`ResetSpec`) — at a scheduled instant the
  wrapped transport's live connections are severed mid-stream (only
  transports exposing ``reset_connection``, i.e. the socket transport);
* **bit-flip corruption** (:class:`CorruptSpec`) — at a scheduled instant
  the next sealed frames on matching channels get one bit flipped (via
  ``corrupt_next_frame``), which the receiver must reject with
  :class:`~repro.errors.AuthenticationError` and the sender must survive
  through its redial/backoff machinery.

The first three reuse the exact window/partition vocabulary of
:mod:`repro.faults.spec`, so one schedule language covers both the
simulator's :class:`~repro.net.network.NetworkFaultPlan` and a live
deployment.  Because chaos is applied on the *sender side* of each wrapped
transport, per-process schedules naturally express asymmetric faults: the
``A -> B`` direction of a link can be partitioned while ``B -> A`` flows.

Determinism: every probabilistic decision is drawn from a per-channel
``random.Random`` seeded from ``(seed, sender, target)`` in per-channel
message order, and every decision is appended to :attr:`decision_log` —
two transports with the same seed, schedule and per-channel message
sequence make byte-identical decisions (a hypothesis-checked property).

The fault clock starts at :meth:`open` (``clock()`` is ``time.monotonic``
unless injected); window times are seconds since then.  A respawned
process re-enters the timeline at zero — document schedules accordingly.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.spec import DelaySpec, LossSpec, PartitionSpec
from repro.net.message import Message


def _opt_ids(value: Any) -> Optional[Tuple[int, ...]]:
    return None if value is None else tuple(int(v) for v in value)


def _matches(
    sender: int,
    receiver: int,
    senders: Optional[Tuple[int, ...]],
    receivers: Optional[Tuple[int, ...]],
) -> bool:
    if senders is not None and sender not in senders:
        return False
    if receivers is not None and receiver not in receivers:
        return False
    return True


@dataclass(frozen=True)
class ResetSpec:
    """Sever matching live connections mid-stream at ``at`` seconds.

    ``senders``/``receivers`` restrict which ordered channels are reset
    (``None`` = any), using the same filter convention as the delay and
    loss windows.
    """

    at: float
    senders: Optional[Tuple[int, ...]] = None
    receivers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"reset time must be >= 0, got {self.at}")

    def matches(self, sender: int, receiver: int) -> bool:
        return _matches(sender, receiver, self.senders, self.receivers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "senders": None if self.senders is None else list(self.senders),
            "receivers": None if self.receivers is None else list(self.receivers),
        }


@dataclass(frozen=True)
class CorruptSpec:
    """Arm bit-flip corruption of ``count`` frames per matching channel at
    ``at`` seconds (the corrupted frame must surface on the receiver as an
    :class:`~repro.errors.AuthenticationError`, never as protocol input)."""

    at: float
    count: int = 1
    senders: Optional[Tuple[int, ...]] = None
    receivers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"corruption time must be >= 0, got {self.at}")
        if self.count < 1:
            raise ConfigurationError(
                f"corruption count must be >= 1, got {self.count}"
            )

    def matches(self, sender: int, receiver: int) -> bool:
        return _matches(sender, receiver, self.senders, self.receivers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "count": self.count,
            "senders": None if self.senders is None else list(self.senders),
            "receivers": None if self.receivers is None else list(self.receivers),
        }


@dataclass(frozen=True)
class WireFaults:
    """One process's wire-fault schedule: the simulator's window vocabulary
    plus the two live-only fault kinds (resets, corruption)."""

    partitions: Tuple[PartitionSpec, ...] = ()
    delays: Tuple[DelaySpec, ...] = ()
    losses: Tuple[LossSpec, ...] = ()
    resets: Tuple[ResetSpec, ...] = ()
    corruptions: Tuple[CorruptSpec, ...] = ()

    @property
    def active(self) -> bool:
        return bool(
            self.partitions
            or self.delays
            or self.losses
            or self.resets
            or self.corruptions
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "partitions": [spec.to_dict() for spec in self.partitions],
            "delays": [spec.to_dict() for spec in self.delays],
            "losses": [spec.to_dict() for spec in self.losses],
            "resets": [spec.to_dict() for spec in self.resets],
            "corruptions": [spec.to_dict() for spec in self.corruptions],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WireFaults":
        """Inverse of :meth:`to_dict` (tolerant of missing keys)."""
        partitions = tuple(
            PartitionSpec(
                start=float(entry["start"]),
                end=float(entry["end"]),
                groups=tuple(
                    tuple(int(n) for n in group) for group in entry["groups"]
                ),
                heal_delay=float(entry.get("heal_delay", 0.0)),
            )
            for entry in data.get("partitions", ())
        )
        delays = tuple(
            DelaySpec(
                start=float(entry["start"]),
                end=float(entry["end"]),
                extra=float(entry["extra"]),
                senders=_opt_ids(entry.get("senders")),
                receivers=_opt_ids(entry.get("receivers")),
            )
            for entry in data.get("delays", ())
        )
        losses = tuple(
            LossSpec(
                start=float(entry["start"]),
                end=float(entry["end"]),
                probability=float(entry["probability"]),
                senders=_opt_ids(entry.get("senders")),
                receivers=_opt_ids(entry.get("receivers")),
            )
            for entry in data.get("losses", ())
        )
        resets = tuple(
            ResetSpec(
                at=float(entry["at"]),
                senders=_opt_ids(entry.get("senders")),
                receivers=_opt_ids(entry.get("receivers")),
            )
            for entry in data.get("resets", ())
        )
        corruptions = tuple(
            CorruptSpec(
                at=float(entry["at"]),
                count=int(entry.get("count", 1)),
                senders=_opt_ids(entry.get("senders")),
                receivers=_opt_ids(entry.get("receivers")),
            )
            for entry in data.get("corruptions", ())
        )
        return cls(
            partitions=partitions,
            delays=delays,
            losses=losses,
            resets=resets,
            corruptions=corruptions,
        )


class ChaosTransport:
    """Deterministic, seeded fault injection around any seam transport.

    Parameters
    ----------
    inner:
        The wrapped transport (socket or in-memory).  Unknown attributes
        (counters, ``advance_epoch``, ``addresses``, ...) delegate to it.
    faults:
        The wire-fault schedule.  With no active faults the wrapper is a
        pure passthrough — byte-identical to the inner transport (a
        hypothesis-checked property).
    seed:
        Seeds the per-channel loss streams.
    clock:
        Injectable monotonic clock (tests pin it for exact window control).
    """

    def __init__(
        self,
        inner: Any,
        faults: Optional[WireFaults] = None,
        *,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.inner = inner
        self.faults = faults if faults is not None else WireFaults()
        self.seed = seed
        self._clock = clock
        self._start: Optional[float] = None
        self._hosted: Tuple[int, ...] = ()
        self._peers: Tuple[int, ...] = ()
        self._tasks: set = set()
        self._rngs: Dict[Tuple[int, int], random.Random] = {}
        self._windows = [spec.to_window() for spec in self.faults.partitions]
        self._delay_windows = [spec.to_window() for spec in self.faults.delays]
        self._loss_windows = [spec.to_window() for spec in self.faults.losses]
        #: Every fault decision, in per-channel order:
        #: ``(kind, sender, target, channel_seq)``.
        self.decision_log: List[Tuple[str, int, int, int]] = []
        self._seq: Dict[Tuple[int, int], int] = {}
        # Observability counters.
        self.frames_passed = 0
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.frames_held = 0
        self.resets_applied = 0
        self.corruptions_armed = 0
        self.wire_faults_unsupported = 0

    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # Only reached for attributes not defined on the wrapper: delegate
        # to the wrapped transport (counters, addresses, epoch hooks, ...).
        return getattr(self.inner, name)

    @staticmethod
    async def _maybe_await(result: Any) -> None:
        if asyncio.iscoroutine(result) or isinstance(result, asyncio.Future):
            await result

    def _now(self) -> float:
        assert self._start is not None
        return self._clock() - self._start

    def _rng(self, sender: int, target: int) -> random.Random:
        key = (sender, target)
        rng = self._rngs.get(key)
        if rng is None:
            # str seeds hash via SHA-512 in CPython's Random, so the stream
            # is stable across processes and PYTHONHASHSEED values.
            rng = self._rngs[key] = random.Random(f"{self.seed}|{sender}|{target}")
        return rng

    def _next_seq(self, sender: int, target: int) -> int:
        key = (sender, target)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return seq

    # ------------------------------------------------------------------
    # The transport seam
    # ------------------------------------------------------------------
    async def open(self, node_ids: Sequence[int]) -> None:
        await self._maybe_await(self.inner.open(node_ids))
        hosted = getattr(self.inner, "local_ids", None)
        self._hosted = tuple(hosted) if hosted else tuple(node_ids)
        addresses = getattr(self.inner, "addresses", None) or {}
        self._peers = tuple(sorted(set(addresses) | set(node_ids)))
        self._start = self._clock()
        for reset in self.faults.resets:
            self._spawn_timer(reset.at, self._apply_reset, reset)
        for corrupt in self.faults.corruptions:
            self._spawn_timer(corrupt.at, self._apply_corrupt, corrupt)

    async def put(self, target: int, item: Tuple[int, Message]) -> None:
        sender = item[0]
        if self._start is None or not self.faults.active or target == sender:
            # Not opened yet / no faults / local self-delivery: passthrough.
            await self.inner.put(target, item)
            return
        now = self._now()
        seq = self._next_seq(sender, target)

        hold_until: Optional[float] = None
        for window in self._windows:
            if window.start <= now < window.end and window.severs(sender, target):
                release = window.end + window.heal_delay
                hold_until = release if hold_until is None else max(hold_until, release)

        dropped = False
        for window in self._loss_windows:
            if window.applies(sender, target, now):
                if self._rng(sender, target).random() < window.probability:
                    dropped = True
                    self.decision_log.append(("drop", sender, target, seq))
                else:
                    self.decision_log.append(("keep", sender, target, seq))
        if dropped:
            self.frames_dropped += 1
            return

        extra = sum(
            window.extra
            for window in self._delay_windows
            if window.applies(sender, target, now)
        )

        if hold_until is not None:
            self.frames_held += 1
            self.decision_log.append(("hold", sender, target, seq))
            self._deliver_later(hold_until - now + extra, target, item)
            return
        if extra > 0.0:
            self.frames_delayed += 1
            self.decision_log.append(("delay", sender, target, seq))
            self._deliver_later(extra, target, item)
            return
        self.frames_passed += 1
        await self.inner.put(target, item)

    async def get(self, node_id: int) -> Tuple[int, Message]:
        return await self.inner.get(node_id)

    def pending(self) -> int:
        """Locally queued messages plus chaos-held in-flight deliveries."""
        inner_pending = getattr(self.inner, "pending", None)
        base = inner_pending() if callable(inner_pending) else 0
        return base + len(self._tasks)

    async def close(self) -> None:
        # Held/delayed messages die with the transport: the seam is
        # best-effort, exactly like sends racing teardown.
        tasks = list(self._tasks)
        self._tasks = set()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await self._maybe_await(self.inner.close())

    # ------------------------------------------------------------------
    # Scheduled delivery and wire events
    # ------------------------------------------------------------------
    def _track(self, coroutine: Any) -> None:
        task = asyncio.create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _deliver_later(self, delay: float, target: int, item: Tuple[int, Message]) -> None:
        async def _later() -> None:
            await asyncio.sleep(max(0.0, delay))
            await self.inner.put(target, item)

        self._track(_later())

    def _spawn_timer(self, at: float, apply: Callable[[Any], None], spec: Any) -> None:
        async def _fire() -> None:
            remaining = at - self._now()
            if remaining > 0:
                await asyncio.sleep(remaining)
            apply(spec)

        self._track(_fire())

    def _apply_reset(self, spec: ResetSpec) -> None:
        reset = getattr(self.inner, "reset_connection", None)
        if reset is None:
            self.wire_faults_unsupported += 1
            return
        for sender in self._hosted:
            for target in self._peers:
                if target != sender and spec.matches(sender, target):
                    if reset(sender, target):
                        self.resets_applied += 1

    def _apply_corrupt(self, spec: CorruptSpec) -> None:
        corrupt = getattr(self.inner, "corrupt_next_frame", None)
        if corrupt is None:
            self.wire_faults_unsupported += 1
            return
        for sender in self._hosted:
            for target in self._peers:
                if target != sender and spec.matches(sender, target):
                    corrupt(sender, target, spec.count)
                    self.corruptions_armed += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """JSON-safe counter snapshot for verdicts and metrics."""
        return {
            "frames_passed": self.frames_passed,
            "frames_dropped": self.frames_dropped,
            "frames_delayed": self.frames_delayed,
            "frames_held": self.frames_held,
            "resets_applied": self.resets_applied,
            "corruptions_armed": self.corruptions_armed,
            "wire_faults_unsupported": self.wire_faults_unsupported,
            "decisions": len(self.decision_log),
        }
