"""Network substrate: messages, authenticated channels, latency and
bandwidth models used by the simulated asynchronous network."""

from repro.net.message import Envelope, Message, estimate_size_bits
from repro.net.latency import (
    AWS_REGIONS,
    ConstantLatency,
    GeoLatencyModel,
    LatencyModel,
    UniformLatency,
    aws_latency_model,
    cps_latency_model,
)
from repro.net.bandwidth import BandwidthAccountant, BandwidthModel
from repro.net.network import AsynchronousNetwork, DeliveryPolicy

__all__ = [
    "AWS_REGIONS",
    "AsynchronousNetwork",
    "BandwidthAccountant",
    "BandwidthModel",
    "ConstantLatency",
    "DeliveryPolicy",
    "Envelope",
    "GeoLatencyModel",
    "LatencyModel",
    "Message",
    "UniformLatency",
    "aws_latency_model",
    "cps_latency_model",
    "estimate_size_bits",
]
