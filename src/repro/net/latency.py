"""Latency models for the simulated asynchronous network.

The paper evaluates Delphi in two environments:

* a geo-distributed AWS testbed with nodes spread equally across eight
  regions (N. Virginia, Ohio, N. California, Oregon, Canada, Ireland,
  Singapore and Tokyo), where round-trip times between regions dominate
  protocol runtime, and
* a CPS testbed of Raspberry Pi devices on a single LAN switch, where
  network latency is small but bandwidth and CPU are constrained.

Latency models map a ``(sender, destination)`` pair to a one-way delay in
seconds, optionally with jitter drawn from a seeded random stream so that
simulations are reproducible.

Jitter is sampled from *per-pair* streams drawn in blocks: every ordered
``(sender, destination)`` pair owns an independent generator seeded from
``(model seed, sender, destination)``, and delays are produced in vectorised
blocks of :data:`JITTER_BLOCK` values at a time.  This keeps the simulator's
hot loop free of per-message scalar RNG calls, and it gives a stronger
determinism guarantee than a single shared stream: the ``k``-th message on a
pair sees the same delay regardless of how traffic on *other* pairs is
interleaved, which is what lets the fast and reference simulation engines
produce identical results (see ``docs/SIMULATOR.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Number of jitter values drawn per vectorised block.
JITTER_BLOCK = 256

#: Stream-domain tag mixed into per-pair latency seeds (keeps latency
#: streams independent from the delivery policy's streams).
_LATENCY_STREAM_TAG = 0x4C


class PairStream:
    """One ordered pair's delay stream, drawn in vectorised blocks.

    ``fill`` maps a :class:`numpy.random.Generator` to the next block of
    delays (a plain Python list, so the hot loop pays no numpy scalar
    boxing); :meth:`next` hands them out one at a time through a list
    iterator (one C-level call per draw instead of index bookkeeping).
    """

    __slots__ = ("_rng", "_fill", "_it")

    def __init__(
        self,
        seed: int,
        sender: int,
        destination: int,
        fill: Callable[[np.random.Generator], List[float]],
    ) -> None:
        self._rng = np.random.default_rng(
            [_LATENCY_STREAM_TAG, seed & 0xFFFFFFFF, sender, destination]
        )
        self._fill = fill
        self._it = iter(())

    def next(self) -> float:
        """The next delay in this pair's stream."""
        value = next(self._it, None)
        if value is None:
            self._it = iter(self._fill(self._rng))
            value = next(self._it)
        return value

#: The eight AWS regions used in the paper's geo-distributed testbed.
AWS_REGIONS: Tuple[str, ...] = (
    "us-east-1",       # N. Virginia
    "us-east-2",       # Ohio
    "us-west-1",       # N. California
    "us-west-2",       # Oregon
    "ca-central-1",    # Canada
    "eu-west-1",       # Ireland
    "ap-southeast-1",  # Singapore
    "ap-northeast-1",  # Tokyo
)

#: Approximate one-way inter-region latencies in milliseconds, derived from
#: published AWS inter-region RTT measurements (RTT / 2).  Keys are ordered
#: pairs of region names; the matrix is symmetric and the diagonal is the
#: intra-region latency.
_AWS_ONE_WAY_MS: Dict[Tuple[str, str], float] = {}


def _fill_aws_matrix() -> None:
    """Populate the AWS one-way latency matrix."""
    rtt_ms = {
        ("us-east-1", "us-east-1"): 1.0,
        ("us-east-1", "us-east-2"): 12.0,
        ("us-east-1", "us-west-1"): 62.0,
        ("us-east-1", "us-west-2"): 68.0,
        ("us-east-1", "ca-central-1"): 14.0,
        ("us-east-1", "eu-west-1"): 68.0,
        ("us-east-1", "ap-southeast-1"): 215.0,
        ("us-east-1", "ap-northeast-1"): 145.0,
        ("us-east-2", "us-east-2"): 1.0,
        ("us-east-2", "us-west-1"): 52.0,
        ("us-east-2", "us-west-2"): 58.0,
        ("us-east-2", "ca-central-1"): 22.0,
        ("us-east-2", "eu-west-1"): 78.0,
        ("us-east-2", "ap-southeast-1"): 205.0,
        ("us-east-2", "ap-northeast-1"): 135.0,
        ("us-west-1", "us-west-1"): 1.0,
        ("us-west-1", "us-west-2"): 22.0,
        ("us-west-1", "ca-central-1"): 78.0,
        ("us-west-1", "eu-west-1"): 130.0,
        ("us-west-1", "ap-southeast-1"): 170.0,
        ("us-west-1", "ap-northeast-1"): 110.0,
        ("us-west-2", "us-west-2"): 1.0,
        ("us-west-2", "ca-central-1"): 60.0,
        ("us-west-2", "eu-west-1"): 125.0,
        ("us-west-2", "ap-southeast-1"): 165.0,
        ("us-west-2", "ap-northeast-1"): 98.0,
        ("ca-central-1", "ca-central-1"): 1.0,
        ("ca-central-1", "eu-west-1"): 72.0,
        ("ca-central-1", "ap-southeast-1"): 210.0,
        ("ca-central-1", "ap-northeast-1"): 150.0,
        ("eu-west-1", "eu-west-1"): 1.0,
        ("eu-west-1", "ap-southeast-1"): 175.0,
        ("eu-west-1", "ap-northeast-1"): 205.0,
        ("ap-southeast-1", "ap-southeast-1"): 1.0,
        ("ap-southeast-1", "ap-northeast-1"): 70.0,
        ("ap-northeast-1", "ap-northeast-1"): 1.0,
    }
    for (a, b), rtt in rtt_ms.items():
        one_way = rtt / 2.0
        _AWS_ONE_WAY_MS[(a, b)] = one_way
        _AWS_ONE_WAY_MS[(b, a)] = one_way


_fill_aws_matrix()


class LatencyModel:
    """Base class for latency models.

    Subclasses implement :meth:`delay` returning a one-way delay in seconds
    for a message from ``sender`` to ``destination``.  Models whose delays
    are random should also implement :meth:`pair_sampler` on top of
    :class:`PairStream` so the fast simulation engine can pull delays
    without per-message method dispatch; the default sampler simply wraps
    :meth:`delay`, which keeps custom models correct (both engines then
    consume the model's stream in the same per-pair order).
    """

    def delay(self, sender: int, destination: int) -> float:
        """One-way delay in seconds for a message ``sender -> destination``."""
        raise NotImplementedError

    def expected_delay(self, sender: int, destination: int) -> float:
        """Expected (jitter-free) one-way delay; defaults to :meth:`delay`."""
        return self.delay(sender, destination)

    def pair_sampler(self, sender: int, destination: int) -> Callable[[], float]:
        """A zero-argument callable yielding successive delays for one pair.

        The fast engine caches one sampler per ordered pair and calls it
        once per scheduled message — exactly as often as the reference
        engine calls :meth:`delay` for that pair.
        """
        return lambda: self.delay(sender, destination)


@dataclass
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``seconds`` to arrive."""

    seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError("latency must be non-negative")

    def delay(self, sender: int, destination: int) -> float:
        return self.seconds

    def pair_sampler(self, sender: int, destination: int) -> Callable[[], float]:
        seconds = self.seconds
        return lambda: seconds


@dataclass
class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` with seeded per-pair
    streams (see the module docstring for the block-drawing scheme)."""

    low: float = 0.001
    high: float = 0.010
    seed: int = 0
    _streams: Dict[Tuple[int, int], PairStream] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ConfigurationError(
                "UniformLatency requires 0 <= low <= high, got "
                f"low={self.low}, high={self.high}"
            )

    def _fill(self, rng: np.random.Generator) -> List[float]:
        return rng.uniform(self.low, self.high, JITTER_BLOCK).tolist()

    def _stream(self, sender: int, destination: int) -> PairStream:
        key = (sender, destination)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = PairStream(
                self.seed, sender, destination, self._fill
            )
        return stream

    def delay(self, sender: int, destination: int) -> float:
        return self._stream(sender, destination).next()

    def pair_sampler(self, sender: int, destination: int) -> Callable[[], float]:
        return self._stream(sender, destination).next

    def expected_delay(self, sender: int, destination: int) -> float:
        return (self.low + self.high) / 2.0


@dataclass
class GeoLatencyModel(LatencyModel):
    """Latency model for nodes assigned to named regions.

    Each node is mapped to a region (round-robin by default, matching the
    paper's "distributed equally across 8 regions"), and the delay between
    two nodes is the inter-region one-way latency plus multiplicative jitter.
    """

    regions: Sequence[str]
    one_way_ms: Dict[Tuple[str, str], float]
    num_nodes: int
    jitter_fraction: float = 0.10
    seed: int = 0
    assignment: Optional[List[str]] = None
    _streams: Dict[Tuple[int, int], PairStream] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if not self.regions:
            raise ConfigurationError("at least one region is required")
        if self.assignment is None:
            self.assignment = [
                self.regions[i % len(self.regions)] for i in range(self.num_nodes)
            ]
        if len(self.assignment) != self.num_nodes:
            raise ConfigurationError(
                "assignment length must equal num_nodes "
                f"({len(self.assignment)} != {self.num_nodes})"
            )

    def region_of(self, node: int) -> str:
        """Region name the given node is assigned to."""
        return self.assignment[node % self.num_nodes]

    def base_delay(self, sender: int, destination: int) -> float:
        """Jitter-free one-way delay in seconds between two nodes."""
        key = (self.region_of(sender), self.region_of(destination))
        if key not in self.one_way_ms:
            raise ConfigurationError(f"no latency entry for region pair {key}")
        return self.one_way_ms[key] / 1000.0

    def _stream(self, sender: int, destination: int) -> PairStream:
        key = (sender, destination)
        stream = self._streams.get(key)
        if stream is None:
            base = self.base_delay(sender, destination)
            fraction = self.jitter_fraction

            def fill(rng: np.random.Generator) -> List[float]:
                jitter = rng.uniform(-fraction, fraction, JITTER_BLOCK)
                return np.maximum(0.0, base * (1.0 + jitter)).tolist()

            stream = self._streams[key] = PairStream(
                self.seed, sender, destination, fill
            )
        return stream

    def delay(self, sender: int, destination: int) -> float:
        return self._stream(sender, destination).next()

    def pair_sampler(self, sender: int, destination: int) -> Callable[[], float]:
        return self._stream(sender, destination).next

    def expected_delay(self, sender: int, destination: int) -> float:
        return self.base_delay(sender, destination)


def aws_latency_model(num_nodes: int, seed: int = 0) -> GeoLatencyModel:
    """Latency model reproducing the paper's geo-distributed AWS testbed.

    Nodes are assigned round-robin to the eight regions of
    :data:`AWS_REGIONS`, as the paper distributes nodes equally.
    """
    return GeoLatencyModel(
        regions=AWS_REGIONS,
        one_way_ms=dict(_AWS_ONE_WAY_MS),
        num_nodes=num_nodes,
        seed=seed,
    )


def cps_latency_model(num_nodes: int, seed: int = 0) -> UniformLatency:
    """Latency model for the Raspberry-Pi CPS testbed (single LAN switch).

    One-way delays on a switched LAN are sub-millisecond; the CPS testbed's
    runtime is instead dominated by bandwidth and CPU, which are modelled by
    :class:`repro.testbed.cps.CpsTestbed`.
    """
    return UniformLatency(low=0.0002, high=0.0015, seed=seed)
