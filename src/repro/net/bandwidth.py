"""Bandwidth models and accounting.

The paper reports (a) the total network bandwidth consumed per protocol run
(Fig. 6b) and (b) runtime in the CPS testbed where the devices' limited NIC
bandwidth is the rate-limiting factor (Fig. 6c, Fig. 7).  Both require the
simulator to account for bytes sent per node and to charge serialisation
delay when a node's uplink is saturated.

:class:`BandwidthModel` describes a per-node uplink capacity;
:class:`BandwidthAccountant` tracks, per node, when the uplink next becomes
free, which the simulation runtime uses to compute each envelope's
transmission (serialisation) delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.net.message import Envelope, MessageTrace


@dataclass(frozen=True)
class BandwidthModel:
    """Per-node uplink capacity.

    Attributes
    ----------
    bits_per_second:
        Uplink capacity of each node.  ``float("inf")`` disables bandwidth
        throttling (messages are only subject to propagation latency).
    """

    bits_per_second: float = float("inf")

    def __post_init__(self) -> None:
        if self.bits_per_second <= 0:
            raise ConfigurationError("bandwidth must be positive")

    def transmission_delay(self, size_bits: int) -> float:
        """Time in seconds needed to push ``size_bits`` onto the wire."""
        if self.bits_per_second == float("inf"):
            return 0.0
        return size_bits / self.bits_per_second

    @property
    def unlimited(self) -> bool:
        """Whether this model imposes no throttling at all."""
        return self.bits_per_second == float("inf")


@dataclass
class BandwidthAccountant:
    """Tracks per-node uplink occupancy and total traffic.

    The accountant serialises each node's outgoing envelopes: a new envelope
    cannot start transmitting before the previous one from the same sender
    has finished.  This reproduces the paper's observation that in the CPS
    testbed the per-round communication *volume* is the dominant runtime
    factor.
    """

    model: BandwidthModel = field(default_factory=BandwidthModel)
    trace: MessageTrace = field(default_factory=MessageTrace)
    _uplink_free_at: Dict[int, float] = field(default_factory=dict)

    def send(self, envelope: Envelope, now: float) -> float:
        """Account for sending ``envelope`` at simulated time ``now``.

        Returns the time at which the last bit of the envelope leaves the
        sender, i.e. ``now`` plus any queueing delay behind earlier messages
        plus the transmission delay of this envelope.
        """
        return self.send_raw(envelope.sender, envelope.size_bits(), now)

    def send_raw(self, sender: int, size_bits: int, now: float) -> float:
        """:meth:`send` given a precomputed wire size (fast-path entry).

        Must perform the same arithmetic as :meth:`send` bit for bit — the
        fast and reference simulation engines assert identical traces.
        """
        self.trace.record_raw(sender, size_bits)
        if self.model.unlimited:
            return now
        start = max(now, self._uplink_free_at.get(sender, 0.0))
        finish = start + size_bits / self.model.bits_per_second
        self._uplink_free_at[sender] = finish
        return finish

    def reset(self) -> None:
        """Clear occupancy and traffic statistics."""
        self.trace = MessageTrace()
        self._uplink_free_at.clear()

    @property
    def total_bits(self) -> int:
        """Total bits sent through this accountant."""
        return self.trace.total_bits

    @property
    def total_megabytes(self) -> float:
        """Total traffic in megabytes."""
        return self.trace.total_megabytes

    @property
    def message_count(self) -> int:
        """Total number of envelopes sent."""
        return self.trace.message_count
