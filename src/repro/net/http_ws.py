"""Minimal HTTP/1.1 request/response and RFC 6455 WebSocket wire layer.

The oracle gateway (:mod:`repro.oracle.gateway`) and its client helpers
(:mod:`repro.oracle.clients`) speak plain HTTP for queries and WebSocket for
the certificate stream, over stdlib ``asyncio`` streams — no third-party
HTTP stack.  This module is the byte-level layer both sides share, in the
same spirit as :mod:`repro.net.framing` for the node-to-node transport:

**HTTP.**  :func:`parse_request_head` / :func:`parse_response_head` parse
one request/status line plus headers from the bytes up to the blank line;
:func:`read_head` reads exactly that much from a stream with a hard size
cap, so a hostile client cannot buffer unbounded header bytes
(:class:`~repro.errors.GatewayError` on overflow or malformed heads).
Responses are always ``Connection: close`` — the gateway's hot path is the
WebSocket stream, so plain HTTP stays one-shot and allocation-simple.

**WebSocket.**  :func:`websocket_accept` derives the RFC 6455
``Sec-WebSocket-Accept`` key; :func:`encode_ws_frame` emits single-frame
text/binary/control messages (client frames masked, server frames not, per
the RFC); :class:`WSParser` incrementally reassembles frames from arbitrary
stream chunks with a payload-size cap enforced *before* buffering — the
same no-memory-bomb discipline as :class:`repro.net.framing.FrameDecoder`.
Fragmented messages (FIN=0 / continuation opcodes) are deliberately
rejected: every message the gateway exchanges fits one frame, and refusing
fragmentation keeps the parser state machine small enough to audit.
"""

from __future__ import annotations

import base64
import hashlib
from typing import Dict, List, Optional, Tuple

from repro.errors import GatewayError

#: RFC 6455 magic GUID appended to the client key before hashing.
WS_MAGIC_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket frame opcodes (no continuation support — see module docstring).
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPCODES = (OP_CLOSE, OP_PING, OP_PONG)

#: Default cap on one HTTP head (request/status line + headers).
MAX_HEAD_BYTES = 16 * 1024

#: Default cap on one WebSocket frame payload.
MAX_WS_PAYLOAD = 1024 * 1024


# ----------------------------------------------------------------------
# HTTP heads
# ----------------------------------------------------------------------
async def read_head(
    reader, max_bytes: int = MAX_HEAD_BYTES
) -> Tuple[bytes, bytes]:
    """Read one HTTP head from a stream; returns ``(head, overrun)``.

    ``overrun`` is whatever body/frame bytes the final read pulled in past
    the blank line — the caller must prepend them to its body or WebSocket
    parser (stream reads do not respect message boundaries).

    Raises
    ------
    GatewayError
        If the head exceeds ``max_bytes`` or the stream ends before the
        blank line.
    """
    head = bytearray()
    while b"\r\n\r\n" not in head:
        if len(head) > max_bytes:
            raise GatewayError(f"HTTP head exceeds the {max_bytes}-byte cap")
        chunk = await reader.read(1024)
        if not chunk:
            raise GatewayError("connection closed before the HTTP head completed")
        head.extend(chunk)
    split = head.index(b"\r\n\r\n") + 4
    if split > max_bytes:
        raise GatewayError(f"HTTP head exceeds the {max_bytes}-byte cap")
    return bytes(head[:split]), bytes(head[split:])


def _parse_headers(lines: List[bytes]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, separator, value = line.partition(b":")
        if not separator:
            raise GatewayError(f"malformed HTTP header line {line!r}")
        headers[name.decode("latin-1").strip().lower()] = (
            value.decode("latin-1").strip()
        )
    return headers


def parse_request_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    """Parse a request head into ``(method, target, headers)``.

    Header names are lower-cased; duplicate headers keep the last value
    (sufficient for the handful of headers the gateway consumes).
    """
    lines = head.split(b"\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith(b"HTTP/1."):
        raise GatewayError(f"malformed HTTP request line {lines[0]!r}")
    method = parts[0].decode("latin-1").upper()
    target = parts[1].decode("latin-1")
    return method, target, _parse_headers(lines[1:])


def parse_response_head(head: bytes) -> Tuple[int, Dict[str, str]]:
    """Parse a response head into ``(status_code, headers)``."""
    lines = head.split(b"\r\n")
    parts = lines[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/1."):
        raise GatewayError(f"malformed HTTP status line {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise GatewayError(f"malformed HTTP status code {parts[1]!r}") from None
    return status, _parse_headers(lines[1:])


def render_response(
    status: int,
    reason: str,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Render one complete ``Connection: close`` HTTP response."""
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    head = f"HTTP/1.1 {status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    return head.encode("latin-1") + b"\r\n" + body


def render_request(
    method: str,
    target: str,
    host: str,
    body: bytes = b"",
    *,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Render one complete client request (``Connection: close`` unless the
    caller overrides it, e.g. for a WebSocket upgrade)."""
    headers = {"Host": host, "Connection": "close"}
    if body:
        headers["Content-Length"] = str(len(body))
    if extra_headers:
        headers.update(extra_headers)
    head = f"{method} {target} HTTP/1.1\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    return head.encode("latin-1") + b"\r\n" + body


# ----------------------------------------------------------------------
# WebSocket frames
# ----------------------------------------------------------------------
def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((key + WS_MAGIC_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def encode_ws_frame(opcode: int, payload: bytes, mask: Optional[bytes] = None) -> bytes:
    """Encode one FIN=1 WebSocket frame.

    ``mask`` is the 4-byte masking key a *client* must apply; servers pass
    ``None`` (unmasked), per RFC 6455 §5.3.
    """
    if opcode in _CONTROL_OPCODES and len(payload) > 125:
        raise GatewayError("control frame payloads are limited to 125 bytes")
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask is not None else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length <= 0xFFFF:
        header.append(mask_bit | 126)
        header.extend(length.to_bytes(2, "big"))
    else:
        header.append(mask_bit | 127)
        header.extend(length.to_bytes(8, "big"))
    if mask is None:
        return bytes(header) + payload
    if len(mask) != 4:
        raise GatewayError("WebSocket masking key must be 4 bytes")
    header.extend(mask)
    masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


class WSParser:
    """Incremental single-frame WebSocket parser for one byte stream.

    ``feed`` consumes whatever chunk the socket produced and returns the
    completed ``(opcode, payload)`` messages, unmasked.  ``require_mask``
    enforces the RFC's direction rule (servers must reject unmasked client
    frames).  The payload cap is enforced from the header, before any
    payload bytes are buffered.
    """

    def __init__(
        self, *, require_mask: bool, max_payload: int = MAX_WS_PAYLOAD
    ) -> None:
        self.require_mask = require_mask
        self.max_payload = max_payload
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buffer.extend(data)
        messages: List[Tuple[int, bytes]] = []
        while True:
            parsed = self._parse_one()
            if parsed is None:
                return messages
            messages.append(parsed)

    def _parse_one(self) -> Optional[Tuple[int, bytes]]:
        buffer = self._buffer
        if len(buffer) < 2:
            return None
        first, second = buffer[0], buffer[1]
        if not first & 0x80 or first & 0x70:
            raise GatewayError(
                "fragmented or reserved-bit WebSocket frames are not supported"
            )
        opcode = first & 0x0F
        if opcode not in (OP_TEXT, OP_BINARY, OP_CLOSE, OP_PING, OP_PONG):
            raise GatewayError(f"unsupported WebSocket opcode {opcode:#x}")
        masked = bool(second & 0x80)
        if masked != self.require_mask:
            expectation = "masked" if self.require_mask else "unmasked"
            raise GatewayError(f"expected {expectation} WebSocket frames")
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buffer) < 4:
                return None
            length = int.from_bytes(buffer[2:4], "big")
            offset = 4
        elif length == 127:
            if len(buffer) < 10:
                return None
            length = int.from_bytes(buffer[2:10], "big")
            offset = 10
        if length > self.max_payload:
            raise GatewayError(
                f"WebSocket frame declares {length} bytes, cap is {self.max_payload}"
            )
        mask_key = b""
        if masked:
            if len(buffer) < offset + 4:
                return None
            mask_key = bytes(buffer[offset : offset + 4])
            offset += 4
        if len(buffer) < offset + length:
            return None
        payload = bytes(buffer[offset : offset + length])
        del buffer[: offset + length]
        if masked:
            payload = bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))
        return opcode, payload
