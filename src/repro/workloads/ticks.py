"""Client-fed epoch workload: batched tick ingestion for the gateway.

The oracle gateway (:mod:`repro.oracle.gateway`) lets clients *push* raw
workload ticks (exchange quotes, sensor readings) over HTTP/WebSocket.
:class:`TickBufferWorkload` is the adapter that turns that firehose into the
``epoch_inputs(n)`` contract the oracle service consumes:

* ticks are validated on ingestion (finite floats, optional absolute
  bounds) and buffered in a **bounded** pending pool — under overload the
  oldest ticks are discarded and counted, so a tick flood cannot grow
  memory;
* at each epoch boundary the pool is drained.  If at least ``n`` mutually
  coherent ticks are pending, the epoch is fed entirely from the ``n``
  newest of them ("client epoch"); otherwise the epoch falls back entirely
  to the wrapped base feed ("feed epoch").  Epochs are never mixed: honest
  inputs within one epoch must share a hull, and client ticks carry no
  relationship to the synthetic feed's current level;
* coherence is enforced with a median window: ticks farther than
  ``max_spread / 2`` from the pending pool's median are rejected and
  counted, so a single hostile tick can neither abort the service through
  the certificate-stream monitor's validity hull nor drag the consumed
  window open.

All mutating entry points take an internal lock: the gateway pushes ticks
from the event-loop thread while the oracle service drains epochs from a
worker thread.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class TickBufferWorkload:
    """Wrap a base epoch feed with a bounded, client-fed tick buffer.

    Parameters
    ----------
    base:
        Any epoch feed exposing ``epoch_inputs(n)``; used whenever too few
        coherent ticks are pending.
    max_pending:
        Bound on the pending tick pool; beyond it the *oldest* ticks are
        discarded (newest data wins) and counted in ``ticks_discarded``.
    max_spread:
        Width of the coherence window: a tick farther than ``max_spread/2``
        from the pending pool's median is rejected.  ``None`` disables the
        window (finiteness and ``bounds`` still apply).
    bounds:
        Optional absolute ``(low, high)`` bounds on accepted tick values.
    breaker_threshold:
        Consecutive *starved* epochs (some ticks pending, but fewer than
        ``n`` — each one burning the whole pool for nothing) that trip the
        circuit breaker.  While open, epochs serve the base feed *without
        draining the pool*, so a trickle of clients can accumulate back to
        a full epoch.  ``None`` disables the breaker.  Epochs with zero
        pending ticks are pure feed mode, not starvation — a tick-less
        gateway never degrades.
    breaker_recovery:
        Consecutive open-state epochs with a full pool (``>= n`` pending)
        required before the breaker re-closes and tick serving resumes.
    """

    def __init__(
        self,
        base,
        *,
        max_pending: int = 4096,
        max_spread: Optional[float] = None,
        bounds: Optional[Tuple[float, float]] = None,
        breaker_threshold: Optional[int] = 3,
        breaker_recovery: int = 2,
    ) -> None:
        if max_pending <= 0:
            raise ConfigurationError("max_pending must be positive")
        if max_spread is not None and max_spread <= 0:
            raise ConfigurationError("max_spread must be positive")
        if bounds is not None and not bounds[0] < bounds[1]:
            raise ConfigurationError(f"malformed tick bounds {bounds!r}")
        if breaker_threshold is not None and breaker_threshold <= 0:
            raise ConfigurationError("breaker_threshold must be positive or None")
        if breaker_recovery <= 0:
            raise ConfigurationError("breaker_recovery must be positive")
        self.base = base
        self.max_pending = max_pending
        self.max_spread = max_spread
        self.bounds = bounds
        self.breaker_threshold = breaker_threshold
        self.breaker_recovery = breaker_recovery
        self._lock = threading.Lock()
        self._pending: Deque[float] = deque()
        # Ingestion / consumption counters (all monotonic).
        self.ticks_received = 0
        self.ticks_accepted = 0
        self.ticks_rejected = 0
        self.ticks_discarded = 0
        self.ticks_consumed = 0
        self.epochs_from_ticks = 0
        self.epochs_from_feed = 0
        # Circuit-breaker state.
        self.breaker_open = False
        self.breaker_trips = 0
        self.epochs_short_circuited = 0
        self._starved_streak = 0
        self._clean_streak = 0

    # ------------------------------------------------------------------
    def _acceptable(self, value: float) -> bool:
        if not math.isfinite(value):
            return False
        if self.bounds is not None and not (self.bounds[0] <= value <= self.bounds[1]):
            return False
        if self.max_spread is not None and self._pending:
            ordered = sorted(self._pending)
            median = ordered[len(ordered) // 2]
            if abs(value - median) > self.max_spread / 2:
                return False
        return True

    def push(self, values: Sequence[float]) -> int:
        """Ingest a batch of client ticks; returns how many were accepted."""
        accepted = 0
        with self._lock:
            for raw in values:
                self.ticks_received += 1
                try:
                    value = float(raw)
                except (TypeError, ValueError):
                    self.ticks_rejected += 1
                    continue
                if not self._acceptable(value):
                    self.ticks_rejected += 1
                    continue
                self._pending.append(value)
                self.ticks_accepted += 1
                accepted += 1
                if len(self._pending) > self.max_pending:
                    self._pending.popleft()
                    self.ticks_discarded += 1
        return accepted

    @property
    def pending(self) -> int:
        """Ticks currently buffered for the next epoch."""
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    def epoch_inputs(self, num_nodes: int) -> List[float]:
        """One epoch of inputs: the newest ``num_nodes`` ticks when enough
        are pending, else the base feed (the pool is drained — unless the
        circuit breaker is open, in which case the pool is left to refill
        while the feed serves)."""
        with self._lock:
            if self.breaker_open:
                if len(self._pending) >= num_nodes:
                    self._clean_streak += 1
                else:
                    self._clean_streak = 0
                if self._clean_streak >= self.breaker_recovery:
                    # Recovered: the pool held a full epoch for
                    # breaker_recovery consecutive epochs; resume serving
                    # ticks from this epoch on.
                    self.breaker_open = False
                    self._clean_streak = 0
                    self._starved_streak = 0
                else:
                    self.epochs_short_circuited += 1
                    self.epochs_from_feed += 1
                    short_circuit = True
            if not self.breaker_open:
                short_circuit = False
        if short_circuit:
            return [float(value) for value in self.base.epoch_inputs(num_nodes)]
        with self._lock:
            ticks = list(self._pending)
            self._pending.clear()
        if len(ticks) >= num_nodes:
            chosen = ticks[-num_nodes:]
            with self._lock:
                self.ticks_consumed += len(chosen)
                self.ticks_discarded += len(ticks) - len(chosen)
                self.epochs_from_ticks += 1
                self._starved_streak = 0
            return chosen
        with self._lock:
            self.ticks_discarded += len(ticks)
            self.epochs_from_feed += 1
            if self.breaker_threshold is not None and ticks:
                # A starved epoch: a partial pool was burned for nothing.
                self._starved_streak += 1
                if self._starved_streak >= self.breaker_threshold:
                    self.breaker_open = True
                    self.breaker_trips += 1
                    self._clean_streak = 0
            else:
                self._starved_streak = 0
        return [float(value) for value in self.base.epoch_inputs(num_nodes)]

    def stats(self) -> Dict[str, int]:
        """JSON-safe counter snapshot (surfaced by the gateway's /metrics)."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "received": self.ticks_received,
                "accepted": self.ticks_accepted,
                "rejected": self.ticks_rejected,
                "discarded": self.ticks_discarded,
                "consumed": self.ticks_consumed,
                "epochs_from_ticks": self.epochs_from_ticks,
                "epochs_from_feed": self.epochs_from_feed,
                "breaker_open": self.breaker_open,
                "breaker_trips": self.breaker_trips,
                "epochs_short_circuited": self.epochs_short_circuited,
            }
