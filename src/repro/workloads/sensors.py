"""Generic sensor-grid workload.

Beyond the two headline applications, the paper motivates Delphi with
fault-tolerant CPS that agree on physical quantities such as the ambient
temperature.  This workload models a grid of sensors measuring a common
scalar with configurable noise (Normal or Gamma) and an optional fraction of
drifting (miscalibrated but non-Byzantine) sensors, and is used by the
quickstart example and several robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.distributions.base import InputDistribution
from repro.distributions.thin_tailed import NormalInputs


class SensorGridWorkload:
    """A grid of sensors measuring a common scalar quantity.

    Parameters
    ----------
    true_value:
        The physical quantity being measured (e.g. temperature in Celsius).
    noise:
        Input distribution describing honest sensor noise; defaults to
        ``Normal(0, 0.5)``.
    drift_fraction:
        Fraction of sensors whose measurements are offset by ``drift``
        (models miscalibration — still honest protocol participants).
    drift:
        Constant offset applied to drifting sensors.
    seed:
        Seed for reproducibility.
    """

    def __init__(
        self,
        true_value: float = 25.0,
        noise: Optional[InputDistribution] = None,
        drift_fraction: float = 0.0,
        drift: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drift_fraction <= 1.0:
            raise ConfigurationError("drift_fraction must be in [0, 1]")
        self.true_value = float(true_value)
        self.noise = noise if noise is not None else NormalInputs(sigma=0.5, seed=seed)
        self.drift_fraction = drift_fraction
        self.drift = drift
        self._rng = np.random.default_rng(seed)

    def node_inputs(self, num_sensors: int) -> List[float]:
        """One round of sensor measurements."""
        if num_sensors <= 0:
            raise ConfigurationError("num_sensors must be positive")
        errors = self.noise.sample_inputs(num_sensors)
        measurements = [self.true_value + (error - self.noise.true_value) for error in errors]
        drifting = int(round(self.drift_fraction * num_sensors))
        for index in range(drifting):
            measurements[index] += self.drift
        return measurements

    def epoch_inputs(self, num_nodes: int) -> List[float]:
        """One epoch of sensor measurements for the streaming oracle
        service (fresh noise each call; the uniform per-epoch hook)."""
        return self.node_inputs(num_nodes)

    def observed_ranges(self, num_sensors: int, rounds: int) -> List[float]:
        """Ranges across ``rounds`` independent measurement rounds."""
        if rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        ranges: List[float] = []
        for _ in range(rounds):
            values = self.node_inputs(num_sensors)
            ranges.append(max(values) - min(values))
        return ranges
