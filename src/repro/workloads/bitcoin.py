"""Synthetic Bitcoin price-feed workload (Section VI-A).

The paper collected per-minute Bitcoin prices from ten exchanges for two
weeks, observed that the per-minute *range* across exchanges is best fitted
by a Frechet distribution with shape ``alpha = 4.41`` and scale ``29.3``
dollars, and configured Delphi from that fit (``Delta = 2000$``,
``rho0 = epsilon = 2$``).

Live exchange data is not available offline, so this module substitutes a
generator that reproduces the statistical properties the paper extracts from
the real data:

* a global Bitcoin mid-price follows a geometric random walk around a
  configurable base price (volatility only matters for realism, not for the
  protocol, which consumes one minute at a time);
* each exchange quotes the mid-price plus an idiosyncratic offset scaled so
  that the cross-exchange range per minute follows the paper's fitted
  Frechet(4.41, 29.3) law;
* each oracle node queries one (or the median of several) exchanges, exactly
  as described in the paper.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The ten exchanges named in the paper.
EXCHANGES = (
    "Binance",
    "Coinbase",
    "Crypto.com",
    "Gate.io",
    "Huobi",
    "Mexc",
    "Poloniex",
    "Bybit",
    "Kucoin",
    "Kraken",
)

#: Frechet fit the paper reports for the per-minute cross-exchange range.
PAPER_FRECHET_ALPHA = 4.41
PAPER_FRECHET_SCALE = 29.3


@dataclass(frozen=True)
class ExchangeQuote:
    """One exchange's quote at one minute."""

    minute: int
    exchange: str
    price: float


class BitcoinPriceFeed:
    """Generates per-minute exchange quotes and per-node oracle inputs.

    Parameters
    ----------
    base_price:
        Starting mid-price in USD (the paper quotes ~40 000 $).
    volatility_per_minute:
        Standard deviation of the mid-price's per-minute log return.
    range_alpha, range_scale:
        Frechet parameters of the per-minute cross-exchange range; defaults
        are the paper's fitted values.
    exchanges:
        Exchange names (defaults to the paper's ten).
    seed:
        Seed for reproducible synthetic data.
    """

    def __init__(
        self,
        base_price: float = 40_000.0,
        volatility_per_minute: float = 5e-4,
        range_alpha: float = PAPER_FRECHET_ALPHA,
        range_scale: float = PAPER_FRECHET_SCALE,
        exchanges: Sequence[str] = EXCHANGES,
        seed: int = 0,
    ) -> None:
        if base_price <= 0:
            raise ConfigurationError("base_price must be positive")
        if range_alpha <= 1 or range_scale <= 0:
            raise ConfigurationError("range parameters must be positive (alpha > 1)")
        self.base_price = base_price
        self.volatility = volatility_per_minute
        self.range_alpha = range_alpha
        self.range_scale = range_scale
        self.exchanges = tuple(exchanges)
        self._rng = np.random.default_rng(seed)
        self._mid_price = base_price
        self._minute = 0

    # ------------------------------------------------------------------
    def _draw_range(self) -> float:
        """One per-minute cross-exchange range drawn from the Frechet fit."""
        uniform = float(self._rng.uniform(1e-12, 1.0))
        return self.range_scale * (-math.log(uniform)) ** (-1.0 / self.range_alpha)

    def next_minute(self) -> List[ExchangeQuote]:
        """Advance one minute and return every exchange's quote."""
        self._minute += 1
        log_return = float(self._rng.normal(0.0, self.volatility))
        self._mid_price *= math.exp(log_return)
        spread = self._draw_range()
        # Place exchange offsets uniformly inside the drawn range so that the
        # realised max-min equals the drawn spread.
        offsets = self._rng.uniform(-0.5, 0.5, size=len(self.exchanges))
        if len(offsets) > 1:
            span = offsets.max() - offsets.min()
            if span > 0:
                offsets = (offsets - offsets.min()) / span - 0.5
        quotes = [
            ExchangeQuote(
                minute=self._minute,
                exchange=name,
                price=float(self._mid_price + offset * spread),
            )
            for name, offset in zip(self.exchanges, offsets)
        ]
        return quotes

    # ------------------------------------------------------------------
    def node_inputs(
        self, num_nodes: int, exchanges_per_node: int = 1
    ) -> List[float]:
        """One minute of oracle inputs: node ``i`` queries ``exchanges_per_node``
        exchanges (round-robin assignment) and reports their median."""
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if exchanges_per_node <= 0:
            raise ConfigurationError("exchanges_per_node must be positive")
        quotes = self.next_minute()
        prices = [quote.price for quote in quotes]
        inputs: List[float] = []
        for node in range(num_nodes):
            chosen = [
                prices[(node + offset) % len(prices)]
                for offset in range(exchanges_per_node)
            ]
            inputs.append(float(statistics.median(chosen)))
        return inputs

    def epoch_inputs(self, num_nodes: int) -> List[float]:
        """One *epoch* of oracle inputs for the streaming oracle service.

        An epoch is one reporting minute: the feed advances and every node
        queries its exchange, exactly as :meth:`node_inputs` — this alias is
        the uniform per-epoch hook shared by all workloads (see
        :func:`repro.workloads.make_epoch_workload`).
        """
        return self.node_inputs(num_nodes)

    def observed_ranges(self, num_nodes: int, minutes: int) -> List[float]:
        """Per-minute input ranges over a simulated observation window (the
        data behind Fig. 4)."""
        if minutes <= 0:
            raise ConfigurationError("minutes must be positive")
        ranges: List[float] = []
        for _ in range(minutes):
            inputs = self.node_inputs(num_nodes)
            ranges.append(max(inputs) - min(inputs))
        return ranges

    @property
    def minute(self) -> int:
        """Minutes generated so far."""
        return self._minute

    @property
    def mid_price(self) -> float:
        """Current mid-price of the random walk."""
        return self._mid_price
