"""Synthetic workload generators for the paper's two applications."""

from repro.workloads.bitcoin import BitcoinPriceFeed, ExchangeQuote
from repro.workloads.drone import DroneLocalisationWorkload, DroneObservation
from repro.workloads.sensors import SensorGridWorkload

__all__ = [
    "BitcoinPriceFeed",
    "DroneLocalisationWorkload",
    "DroneObservation",
    "ExchangeQuote",
    "SensorGridWorkload",
]
