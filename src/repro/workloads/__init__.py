"""Synthetic workload generators for the paper's two applications.

Every workload doubles as a *streaming epoch feed* for the oracle service
(:mod:`repro.oracle.service`): calling :meth:`epoch_inputs(num_nodes)`
advances the underlying process one epoch (a reporting minute for the
Bitcoin feed, a fresh measurement round for the sensor grid, a new swarm
observation for the drones) and returns one scalar input per oracle node.
:func:`make_epoch_workload` builds a feed by name with service-appropriate
Delphi defaults (epsilon / delta_max calibrated to each workload's input
spread).
"""

from typing import Any, Dict

from repro.errors import ConfigurationError
from repro.workloads.bitcoin import BitcoinPriceFeed, ExchangeQuote
from repro.workloads.drone import DroneLocalisationWorkload, DroneObservation
from repro.workloads.sensors import SensorGridWorkload
from repro.workloads.ticks import TickBufferWorkload

#: Workloads the oracle service can stream, with their per-epoch feed
#: factory and the paper-derived Delphi defaults for that input process
#: (epsilon is the application's agreement need; delta_max bounds the
#: honest input range; rho0 trades levels for per-level traffic).
EPOCH_WORKLOADS: Dict[str, Dict[str, Any]] = {
    "bitcoin": {
        "factory": BitcoinPriceFeed,
        "epsilon": 2.0,
        "rho0": 10.0,
        "delta_max": 2000.0,
        "description": "per-minute Bitcoin quotes from ten exchanges (Section VI-A)",
    },
    "sensors": {
        "factory": SensorGridWorkload,
        "epsilon": 0.5,
        "rho0": 0.5,
        "delta_max": 16.0,
        "description": "sensor grid measuring a common scalar with noise",
    },
    "drone": {
        "factory": DroneLocalisationWorkload,
        "epsilon": 0.5,
        "rho0": 1.0,
        "delta_max": 64.0,
        "description": "drone-swarm object localisation, x coordinate (Section VI-B)",
    },
}


def make_epoch_workload(name: str, seed: int = 0, **options: Any):
    """Build the named workload as an epoch feed (``epoch_inputs`` hook)."""
    try:
        entry = EPOCH_WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r} (known: {', '.join(sorted(EPOCH_WORKLOADS))})"
        )
    return entry["factory"](seed=seed, **options)


__all__ = [
    "BitcoinPriceFeed",
    "DroneLocalisationWorkload",
    "DroneObservation",
    "EPOCH_WORKLOADS",
    "ExchangeQuote",
    "SensorGridWorkload",
    "TickBufferWorkload",
    "make_epoch_workload",
]
