"""Drone-based object localisation workload (Section VI-B).

The paper's CPS application is a swarm of drones that localise cars: each
drone runs an object detector (EfficientDet) on its camera image, converts
the detection's bounding box plus its own GPS position into an estimate of
the car's 2-D location, and the swarm agrees on the location with two Delphi
instances (one per coordinate).

The detector, the VisDrone/UAVDT imagery and the FAA GPS error data are not
available offline, so the workload samples the two error sources from the
distributions the paper fits to them:

* detection quality: IoU ``~ Gamma`` with mean 0.87 (Fig. 5); the location
  error contributed by the detector is ``(1 - IoU) * l_diag`` per coordinate
  with ``l_diag ~= 5.3 m`` for a standard car;
* GPS error: mean 1.3 m, below 5 m with probability 0.9999 (FAA report),
  modelled as a Gamma distribution matching those two constraints.

The combined per-coordinate error matches the paper's Gamma(shape=30.77,
scale=0.18) aggregate model, and the workload exposes both the raw IoU
samples (for Fig. 5) and per-node location estimates (protocol inputs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Diagonal of a standard car's bounding box (5 m x 2 m), in metres.
CAR_DIAGONAL_M = math.sqrt(5.0 ** 2 + 2.0 ** 2)

#: Combined per-coordinate error model the paper derives (Gamma scale/shape).
PAPER_GAMMA_SCALE = 0.18
PAPER_GAMMA_SHAPE = 30.77

#: Mean IoU the paper measures for EfficientDet on the drone imagery.
PAPER_MEAN_IOU = 0.87


@dataclass(frozen=True)
class DroneObservation:
    """One drone's view of one target: IoU, GPS error and location estimate."""

    drone: int
    iou: float
    gps_error_m: Tuple[float, float]
    estimate: Tuple[float, float]


class DroneLocalisationWorkload:
    """Generates drone observations of a target at a known true location.

    Parameters
    ----------
    true_location:
        Ground-truth 2-D location of the target, in metres.
    mean_iou:
        Mean detection IoU; the Gamma shape is chosen to keep the
        distribution concentrated like the paper's Fig. 5.
    gps_mean_error:
        Mean magnitude of the per-coordinate GPS error, in metres.
    seed:
        Seed for reproducibility.
    """

    def __init__(
        self,
        true_location: Tuple[float, float] = (100.0, 100.0),
        mean_iou: float = PAPER_MEAN_IOU,
        iou_concentration: float = 60.0,
        gps_mean_error: float = 1.3,
        gps_shape: float = 2.0,
        seed: int = 0,
    ) -> None:
        if not 0 < mean_iou < 1:
            raise ConfigurationError("mean_iou must be in (0, 1)")
        if gps_mean_error <= 0:
            raise ConfigurationError("gps_mean_error must be positive")
        self.true_location = (float(true_location[0]), float(true_location[1]))
        self.mean_iou = mean_iou
        self.iou_concentration = iou_concentration
        self.gps_mean_error = gps_mean_error
        self.gps_shape = gps_shape
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample_ious(self, count: int) -> List[float]:
        """IoU samples of the detector (the data behind Fig. 5).

        A Beta distribution with the requested mean and concentration keeps
        samples in (0, 1) while matching the Gamma-like thin-tailed shape of
        the paper's histogram.
        """
        if count <= 0:
            raise ConfigurationError("count must be positive")
        a = self.mean_iou * self.iou_concentration
        b = (1.0 - self.mean_iou) * self.iou_concentration
        return [float(value) for value in self._rng.beta(a, b, size=count)]

    def _sample_gps_error(self) -> Tuple[float, float]:
        scale = self.gps_mean_error / self.gps_shape
        magnitude_x = float(self._rng.gamma(self.gps_shape, scale))
        magnitude_y = float(self._rng.gamma(self.gps_shape, scale))
        sign_x = 1.0 if self._rng.random() < 0.5 else -1.0
        sign_y = 1.0 if self._rng.random() < 0.5 else -1.0
        return (sign_x * magnitude_x, sign_y * magnitude_y)

    def observe(self, drone: int) -> DroneObservation:
        """One drone's observation of the target."""
        iou = self.sample_ious(1)[0]
        detection_error = (1.0 - iou) * CAR_DIAGONAL_M
        sign_x = 1.0 if self._rng.random() < 0.5 else -1.0
        sign_y = 1.0 if self._rng.random() < 0.5 else -1.0
        gps_error = self._sample_gps_error()
        estimate = (
            self.true_location[0] + sign_x * detection_error + gps_error[0],
            self.true_location[1] + sign_y * detection_error + gps_error[1],
        )
        return DroneObservation(
            drone=drone, iou=iou, gps_error_m=gps_error, estimate=estimate
        )

    # ------------------------------------------------------------------
    def node_inputs(self, num_drones: int) -> Tuple[List[float], List[float]]:
        """Per-drone x and y estimates — the inputs of the two Delphi runs."""
        if num_drones <= 0:
            raise ConfigurationError("num_drones must be positive")
        observations = [self.observe(drone) for drone in range(num_drones)]
        xs = [observation.estimate[0] for observation in observations]
        ys = [observation.estimate[1] for observation in observations]
        return xs, ys

    def epoch_inputs(self, num_nodes: int) -> List[float]:
        """One epoch of localisation inputs for the streaming oracle
        service: the x-coordinate estimates of a fresh swarm observation
        (the paper runs one Delphi instance per coordinate; the service
        agrees on one coordinate per epoch)."""
        xs, _ys = self.node_inputs(num_nodes)
        return xs

    def observed_ranges(self, num_drones: int, rounds: int) -> List[float]:
        """Per-round ranges of the x coordinate estimates (range analysis)."""
        if rounds <= 0:
            raise ConfigurationError("rounds must be positive")
        ranges: List[float] = []
        for _ in range(rounds):
            xs, _ = self.node_inputs(num_drones)
            ranges.append(max(xs) - min(xs))
        return ranges

    def error_distances(self, num_drones: int) -> List[float]:
        """Per-drone distance between estimate and ground truth (the paper's
        ``d_i`` accuracy metric)."""
        distances: List[float] = []
        for drone in range(num_drones):
            observation = self.observe(drone)
            dx = observation.estimate[0] - self.true_location[0]
            dy = observation.estimate[1] - self.true_location[1]
            distances.append(math.hypot(dx, dy))
        return distances
