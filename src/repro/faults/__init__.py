"""Fault-injection campaigns and runtime protocol-invariant monitors.

The subsystem has three layers:

* :mod:`repro.faults.spec` — declarative :class:`FaultSpec` (corruption
  schedules + network-fault windows), JSON-safe and embeddable in
  ``ScenarioSpec.extras['faults']``;
* :mod:`repro.faults.monitors` — :class:`~repro.sim.observers.SimObserver`
  subclasses that watch the paper's invariants during a run and fail fast;
* :mod:`repro.faults.campaign` — :class:`FaultCampaign` matrices run on both
  simulation engines with equivalence asserted, verdict artifacts and
  violation repro bundles.
"""

from repro.faults.spec import (
    FULL_BUDGET,
    CorruptionSpec,
    DelaySpec,
    FaultSpec,
    LossSpec,
    PartitionSpec,
    StrategyContext,
    fault_spec_of,
    register_strategy,
    scenario_corrupted_ids,
)
from repro.faults.monitors import (
    BinaryBASafetyMonitor,
    EpsilonAgreementMonitor,
    InvariantMonitor,
    RbcSafetyMonitor,
    TerminationMonitor,
    ValidityMonitor,
    build_monitors,
)
from repro.faults.campaign import (
    CAMPAIGNS,
    CampaignResult,
    CellVerdict,
    FaultCampaign,
    FaultCase,
    campaign,
    list_campaigns,
    replay_bundle,
    run_campaign,
    run_fault_cell,
)

__all__ = [
    "BinaryBASafetyMonitor",
    "CAMPAIGNS",
    "CampaignResult",
    "CellVerdict",
    "CorruptionSpec",
    "DelaySpec",
    "EpsilonAgreementMonitor",
    "FULL_BUDGET",
    "FaultCampaign",
    "FaultCase",
    "FaultSpec",
    "InvariantMonitor",
    "LossSpec",
    "PartitionSpec",
    "RbcSafetyMonitor",
    "StrategyContext",
    "TerminationMonitor",
    "ValidityMonitor",
    "build_monitors",
    "campaign",
    "fault_spec_of",
    "list_campaigns",
    "register_strategy",
    "replay_bundle",
    "run_campaign",
    "run_fault_cell",
    "scenario_corrupted_ids",
]
