"""Fault-injection campaigns and runtime protocol-invariant monitors.

The subsystem has three layers:

* :mod:`repro.faults.spec` — declarative :class:`FaultSpec` (corruption
  schedules + network-fault windows), JSON-safe and embeddable in
  ``ScenarioSpec.extras['faults']``;
* :mod:`repro.faults.monitors` — :class:`~repro.sim.observers.SimObserver`
  subclasses that watch the paper's invariants during a run and fail fast;
* :mod:`repro.faults.campaign` — :class:`FaultCampaign` matrices run on both
  simulation engines with equivalence asserted, verdict artifacts and
  violation repro bundles.
"""

from repro.faults.spec import (
    FULL_BUDGET,
    CorruptionSpec,
    DelaySpec,
    FaultSpec,
    LossSpec,
    PartitionSpec,
    StrategyContext,
    fault_spec_of,
    register_strategy,
    scenario_corrupted_ids,
)
from repro.faults.monitors import (
    BinaryBASafetyMonitor,
    EpsilonAgreementMonitor,
    InvariantMonitor,
    RbcSafetyMonitor,
    TerminationMonitor,
    ValidityMonitor,
    build_monitors,
    collect_margins,
)
from repro.faults.campaign import (
    CAMPAIGNS,
    CampaignResult,
    CellVerdict,
    FaultCampaign,
    FaultCase,
    ReplayReport,
    campaign,
    list_campaigns,
    replay_bundle,
    replay_bundle_report,
    run_campaign,
    run_fault_cell,
)
from repro.faults.search import (
    CORPUS_SCHEMA,
    FUZZ_SCHEMA,
    Evaluation,
    FuzzResult,
    MUTATORS,
    ScheduleSearch,
    corpus_entry,
    fuzz_schedules,
    load_corpus,
    mutate,
    replay_corpus_entry,
    save_corpus,
)

__all__ = [
    "BinaryBASafetyMonitor",
    "CAMPAIGNS",
    "CORPUS_SCHEMA",
    "CampaignResult",
    "CellVerdict",
    "CorruptionSpec",
    "DelaySpec",
    "EpsilonAgreementMonitor",
    "Evaluation",
    "FULL_BUDGET",
    "FUZZ_SCHEMA",
    "FaultCampaign",
    "FaultCase",
    "FaultSpec",
    "FuzzResult",
    "InvariantMonitor",
    "LossSpec",
    "MUTATORS",
    "PartitionSpec",
    "RbcSafetyMonitor",
    "ReplayReport",
    "ScheduleSearch",
    "StrategyContext",
    "TerminationMonitor",
    "ValidityMonitor",
    "build_monitors",
    "campaign",
    "collect_margins",
    "corpus_entry",
    "fault_spec_of",
    "fuzz_schedules",
    "list_campaigns",
    "load_corpus",
    "mutate",
    "register_strategy",
    "replay_bundle",
    "replay_bundle_report",
    "replay_corpus_entry",
    "run_campaign",
    "run_fault_cell",
    "save_corpus",
    "scenario_corrupted_ids",
]
