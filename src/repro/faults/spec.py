"""Declarative fault descriptions: corruption schedules + network faults.

A :class:`FaultSpec` describes everything a fault campaign can do to one
scenario, as plain JSON-safe data:

* **corruptions** — which Byzantine strategies run, on how many nodes, and
  *when* they activate (static from t=0, or adaptive mid-run via
  :class:`~repro.adversary.strategies.ScheduledStrategy`);
* **partitions / delays / losses** — network-fault windows compiled into a
  :class:`~repro.net.network.NetworkFaultPlan` and installed on the
  scenario's :class:`~repro.net.network.DeliveryPolicy`.

Because the spec is JSON-safe it rides inside ``ScenarioSpec.extras["faults"]``
and therefore composes with the existing :class:`~repro.experiments.spec.SweepSpec`
grids: fault cells hash, cache and parallelise exactly like any other cell.

Strategies are created through a registry (:data:`STRATEGY_FACTORIES`) so
tests and downstream code can :func:`register_strategy` their own behaviours
(including deliberately protocol-breaking ones used to prove the invariant
monitors fire).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.adversary.base import AdversaryStrategy
from repro.adversary.strategies import (
    BogusPayloadStrategy,
    CrashStrategy,
    DelayedHonestStrategy,
    EquivocatingStrategy,
    RandomBitStrategy,
    ScheduledStrategy,
    SpamStrategy,
)
from repro.errors import ConfigurationError
from repro.net.network import (
    DelayWindow,
    LossWindow,
    NetworkFaultPlan,
    PartitionWindow,
)
from repro.protocols.base import byzantine_bound

#: ``CorruptionSpec.count`` value meaning "the full t = (n-1)//3 budget".
FULL_BUDGET = -1


@dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy factory may need to build one strategy."""

    node_id: int
    n: int
    t: int
    seed: int
    options: Mapping[str, Any]
    scenario: Any = None  # the enclosing ScenarioSpec, when available


StrategyFactory = Callable[[StrategyContext], AdversaryStrategy]


def _poison_input_strategy(ctx: StrategyContext) -> AdversaryStrategy:
    """An otherwise-honest Delphi node whose *input* is adversarial.

    The node follows the protocol exactly but starts from an attacker-chosen
    value (``options['value']``), probing the validity-hull boundary rather
    than the message layer.  Delphi-only: DORA constructs its shared
    signature scheme inside its runner, so an externally-built node cannot
    join that run.
    """
    from repro.adversary.base import HonestWithInput
    from repro.analysis.parameters import derive_parameters
    from repro.core.delphi import DelphiNode

    scenario = ctx.scenario
    if scenario is None or getattr(scenario, "protocol", None) != "delphi":
        raise ConfigurationError(
            "poison-input corruption requires a delphi scenario context"
        )
    params = derive_parameters(
        n=scenario.n,
        epsilon=scenario.epsilon,
        rho0=scenario.rho0,
        delta_max=scenario.delta_max,
        max_rounds=scenario.max_rounds,
    )
    value = float(ctx.options.get("value", 0.0))
    return HonestWithInput(DelphiNode(ctx.node_id, params, value=value))


#: Registry of corruption strategies available to fault specs, by name.
STRATEGY_FACTORIES: Dict[str, StrategyFactory] = {
    "crash": lambda ctx: CrashStrategy(),
    "delay": lambda ctx: DelayedHonestStrategy(
        hold_back=int(ctx.options.get("hold_back", 3))
    ),
    "equivocate": lambda ctx: EquivocatingStrategy(
        flip_field=ctx.options.get("flip_field")
    ),
    "random-bit": lambda ctx: RandomBitStrategy(seed=ctx.seed + ctx.node_id),
    "spam": lambda ctx: SpamStrategy(copies=int(ctx.options.get("copies", 2))),
    "bogus-report": lambda ctx: BogusPayloadStrategy(
        protocol=str(ctx.options.get("protocol", "dora")),
        junk=ctx.options.get("junk", "bogus"),
    ),
    "poison-input": _poison_input_strategy,
}


def _validate_window(kind: str, start: float, end: float) -> None:
    """Shared declaration-time checks for fault windows.

    Catching nonsense here (rather than mid-run) matters: a negative delay,
    for example, would schedule deliveries in the simulated past and produce
    silently wrong campaign results instead of a clean error.
    """
    if start < 0:
        raise ConfigurationError(f"{kind} window start must be >= 0, got {start}")
    if end < start:
        raise ConfigurationError(
            f"{kind} window must have end >= start, got [{start}, {end})"
        )


def register_strategy(name: str, factory: StrategyFactory) -> None:
    """Register (or replace) a corruption strategy factory under ``name``.

    Tests use this to inject deliberately invariant-breaking behaviours and
    check that the runtime monitors catch them.
    """
    STRATEGY_FACTORIES[name] = factory


@dataclass(frozen=True)
class CorruptionSpec:
    """One group of corrupted nodes sharing a strategy and a schedule.

    ``count = FULL_BUDGET`` resolves to the cell's full ``(n-1)//3`` fault
    budget, so one spec can ride a sweep across system sizes.
    ``activation_time > 0`` makes the corruption *adaptive*: the nodes behave
    honestly until that simulated time.
    ``nodes`` pins the corruption to explicit node ids instead of the
    highest-ids convention — sharded fault cells use it to target elected
    representatives (whose ids depend on the topology seed).  When set, it
    overrides ``count``.
    """

    strategy: str = "crash"
    count: int = FULL_BUDGET
    activation_time: float = 0.0
    options: Mapping[str, Any] = field(default_factory=dict)
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.activation_time < 0:
            raise ConfigurationError(
                f"activation_time must be >= 0, got {self.activation_time}"
            )
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(int(v) for v in self.nodes))
            if len(set(self.nodes)) != len(self.nodes):
                raise ConfigurationError(
                    f"corruption nodes contain duplicates: {self.nodes}"
                )

    def resolved_count(self, n: int) -> int:
        if self.nodes is not None:
            return len(self.nodes)
        if self.count == FULL_BUDGET:
            return byzantine_bound(n)
        if self.count < 0:
            raise ConfigurationError(
                f"corruption count must be non-negative or FULL_BUDGET, "
                f"got {self.count}"
            )
        return self.count

    def resolved_nodes(self, n: int, taken: "set[int]") -> List[int]:
        """The node ids this group corrupts, honouring explicit targets.

        ``taken`` holds ids claimed by earlier groups; implicit groups keep
        the historical highest-ids-first convention, skipping claimed ids.
        """
        if self.nodes is not None:
            for node in self.nodes:
                if not 0 <= node < n:
                    raise ConfigurationError(
                        f"corruption node {node} outside [0, {n})"
                    )
                if node in taken:
                    raise ConfigurationError(
                        f"corruption node {node} claimed by multiple groups"
                    )
            return list(self.nodes)
        ids: List[int] = []
        next_id = n - 1
        for _ in range(self.resolved_count(n)):
            while next_id >= 0 and next_id in taken:
                next_id -= 1
            if next_id < 0:
                raise ConfigurationError(
                    f"fault spec corrupts more than n={n} nodes"
                )
            ids.append(next_id)
            next_id -= 1
        return ids

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["options"] = dict(self.options)
        data["nodes"] = None if self.nodes is None else list(self.nodes)
        return data


@dataclass(frozen=True)
class PartitionSpec:
    """JSON-safe description of a :class:`~repro.net.network.PartitionWindow`."""

    start: float
    end: float
    groups: Tuple[Tuple[int, ...], ...]
    heal_delay: float = 0.0

    def __post_init__(self) -> None:
        _validate_window("partition", self.start, self.end)
        if self.heal_delay < 0:
            raise ConfigurationError(
                f"heal_delay must be >= 0, got {self.heal_delay}"
            )

    def to_window(self) -> PartitionWindow:
        return PartitionWindow(
            start=self.start,
            end=self.end,
            groups=tuple(tuple(group) for group in self.groups),
            heal_delay=self.heal_delay,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "groups": [list(group) for group in self.groups],
            "heal_delay": self.heal_delay,
        }


@dataclass(frozen=True)
class DelaySpec:
    """JSON-safe description of a :class:`~repro.net.network.DelayWindow`."""

    start: float
    end: float
    extra: float
    senders: Optional[Tuple[int, ...]] = None
    receivers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _validate_window("delay", self.start, self.end)
        if self.extra < 0:
            raise ConfigurationError(f"delay extra must be >= 0, got {self.extra}")

    def to_window(self) -> DelayWindow:
        return DelayWindow(
            start=self.start,
            end=self.end,
            extra=self.extra,
            senders=None if self.senders is None else tuple(self.senders),
            receivers=None if self.receivers is None else tuple(self.receivers),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "extra": self.extra,
            "senders": None if self.senders is None else list(self.senders),
            "receivers": None if self.receivers is None else list(self.receivers),
        }


@dataclass(frozen=True)
class LossSpec:
    """JSON-safe description of a :class:`~repro.net.network.LossWindow`."""

    start: float
    end: float
    probability: float
    senders: Optional[Tuple[int, ...]] = None
    receivers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _validate_window("loss", self.start, self.end)
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got {self.probability}"
            )

    def to_window(self) -> LossWindow:
        return LossWindow(
            start=self.start,
            end=self.end,
            probability=self.probability,
            senders=None if self.senders is None else tuple(self.senders),
            receivers=None if self.receivers is None else tuple(self.receivers),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "probability": self.probability,
            "senders": None if self.senders is None else list(self.senders),
            "receivers": None if self.receivers is None else list(self.receivers),
        }


@dataclass(frozen=True)
class FaultSpec:
    """A complete fault configuration for one scenario cell.

    Attributes
    ----------
    corruptions:
        Corruption groups (strategy, node count, activation schedule).
    partitions, delays, losses:
        Network-fault windows compiled into the delivery policy's
        :class:`~repro.net.network.NetworkFaultPlan`.
    allow_over_budget:
        Permit corrupting more than ``(n-1)//3`` nodes.  Off by default —
        exceeding the budget voids the paper's guarantees, which is exactly
        what monitor-demonstration tests use it for.
    expect_termination:
        Overrides the derived liveness expectation; ``None`` derives it
        (termination is *not* expected when loss windows may drop messages,
        or when the corruption budget is exceeded).
    """

    corruptions: Tuple[CorruptionSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    delays: Tuple[DelaySpec, ...] = ()
    losses: Tuple[LossSpec, ...] = ()
    allow_over_budget: bool = False
    expect_termination: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def has_network_faults(self) -> bool:
        return bool(self.partitions or self.delays or self.losses)

    def network_plan(self) -> Optional[NetworkFaultPlan]:
        """The runtime fault plan for the delivery policy (or ``None``)."""
        if not self.has_network_faults:
            return None
        return NetworkFaultPlan(
            partitions=tuple(spec.to_window() for spec in self.partitions),
            delays=tuple(spec.to_window() for spec in self.delays),
            losses=tuple(spec.to_window() for spec in self.losses),
        )

    def _assignments(self, n: int) -> List[Tuple[CorruptionSpec, List[int]]]:
        """Per-group corrupted-node assignment: explicit ``nodes`` targets
        claim their ids first, then implicit groups fill highest ids first
        in one contiguous block per group (matching the existing
        ``num_byzantine`` convention of the experiment cells), skipping any
        explicitly claimed id."""
        taken: set = set()
        resolved: Dict[int, List[int]] = {}
        for index, corruption in enumerate(self.corruptions):
            if corruption.nodes is None:
                continue
            ids = corruption.resolved_nodes(n, taken)
            taken.update(ids)
            resolved[index] = ids
        for index, corruption in enumerate(self.corruptions):
            if corruption.nodes is not None:
                continue
            ids = corruption.resolved_nodes(n, taken)
            taken.update(ids)
            resolved[index] = ids
        total = sum(len(ids) for ids in resolved.values())
        if not self.allow_over_budget and total > byzantine_bound(n):
            raise ConfigurationError(
                f"fault spec corrupts {total} nodes, exceeding the "
                f"t={byzantine_bound(n)} budget for n={n} "
                "(set allow_over_budget=True to explore beyond the model)"
            )
        return [
            (corruption, resolved[index])
            for index, corruption in enumerate(self.corruptions)
        ]

    def corrupted_ids(self, n: int) -> List[int]:
        """Deterministic corrupted-node assignment (see :meth:`_assignments`)."""
        ids: List[int] = []
        for _, group_ids in self._assignments(n):
            ids.extend(group_ids)
        return ids

    def build_strategies(
        self, n: int, seed: int = 0, scenario: Any = None
    ) -> Dict[int, AdversaryStrategy]:
        """Instantiate the per-node strategy map for the simulation runtime."""
        t = byzantine_bound(n)
        assignment: Dict[int, AdversaryStrategy] = {}
        for corruption, group_ids in self._assignments(n):
            try:
                factory = STRATEGY_FACTORIES[corruption.strategy]
            except KeyError:
                known = ", ".join(sorted(STRATEGY_FACTORIES))
                raise ConfigurationError(
                    f"unknown corruption strategy {corruption.strategy!r} "
                    f"(known: {known})"
                )
            for node_id in group_ids:
                context = StrategyContext(
                    node_id=node_id,
                    n=n,
                    t=t,
                    seed=seed,
                    options=dict(corruption.options),
                    scenario=scenario,
                )
                strategy = factory(context)
                if corruption.activation_time > 0.0:
                    strategy = ScheduledStrategy(strategy, corruption.activation_time)
                assignment[node_id] = strategy
        return assignment

    def terminating(self) -> bool:
        """Whether honest termination is guaranteed under this fault spec."""
        if self.expect_termination is not None:
            return self.expect_termination
        return not self.losses

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, embeddable in ``ScenarioSpec.extras['faults']``."""
        return {
            "corruptions": [spec.to_dict() for spec in self.corruptions],
            "partitions": [spec.to_dict() for spec in self.partitions],
            "delays": [spec.to_dict() for spec in self.delays],
            "losses": [spec.to_dict() for spec in self.losses],
            "allow_over_budget": self.allow_over_budget,
            "expect_termination": self.expect_termination,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (tolerant of missing keys)."""

        def _opt_tuple(value: Any) -> Optional[Tuple[int, ...]]:
            return None if value is None else tuple(int(v) for v in value)

        corruptions = tuple(
            CorruptionSpec(
                strategy=str(entry.get("strategy", "crash")),
                count=int(entry.get("count", FULL_BUDGET)),
                activation_time=float(entry.get("activation_time", 0.0)),
                options=dict(entry.get("options", {})),
                nodes=_opt_tuple(entry.get("nodes")),
            )
            for entry in data.get("corruptions", ())
        )
        partitions = tuple(
            PartitionSpec(
                start=float(entry["start"]),
                end=float(entry["end"]),
                groups=tuple(tuple(int(n) for n in group) for group in entry["groups"]),
                heal_delay=float(entry.get("heal_delay", 0.0)),
            )
            for entry in data.get("partitions", ())
        )
        delays = tuple(
            DelaySpec(
                start=float(entry["start"]),
                end=float(entry["end"]),
                extra=float(entry["extra"]),
                senders=_opt_tuple(entry.get("senders")),
                receivers=_opt_tuple(entry.get("receivers")),
            )
            for entry in data.get("delays", ())
        )
        losses = tuple(
            LossSpec(
                start=float(entry["start"]),
                end=float(entry["end"]),
                probability=float(entry["probability"]),
                senders=_opt_tuple(entry.get("senders")),
                receivers=_opt_tuple(entry.get("receivers")),
            )
            for entry in data.get("losses", ())
        )
        expect = data.get("expect_termination")
        return cls(
            corruptions=corruptions,
            partitions=partitions,
            delays=delays,
            losses=losses,
            allow_over_budget=bool(data.get("allow_over_budget", False)),
            expect_termination=None if expect is None else bool(expect),
        )


def fault_spec_of(scenario: Any) -> Optional[FaultSpec]:
    """The :class:`FaultSpec` embedded in a scenario's extras, if any."""
    raw = getattr(scenario, "extras", {}).get("faults")
    if not raw:
        return None
    if isinstance(raw, FaultSpec):
        return raw
    return FaultSpec.from_dict(raw)


def scenario_corrupted_ids(scenario: Any) -> List[int]:
    """Corrupted node ids for a scenario, from its fault spec or the plain
    ``num_byzantine`` field (highest ids, the shared convention)."""
    fault_spec = fault_spec_of(scenario)
    if fault_spec is not None and fault_spec.corruptions:
        return fault_spec.corrupted_ids(scenario.n)
    if scenario.adversary != "none" and scenario.num_byzantine:
        return list(range(scenario.n - scenario.num_byzantine, scenario.n))
    return []
