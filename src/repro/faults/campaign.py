"""Fault campaigns: declarative fault matrices run on both engines.

A :class:`FaultCampaign` is a grid — protocol × system size × fault case ×
seed — expressed through the existing :class:`~repro.experiments.spec.SweepSpec`
machinery (each fault case becomes a sweep *variant* whose
:class:`~repro.faults.spec.FaultSpec` rides in ``extras['faults']``).

Running a campaign executes every cell **twice**, once per simulation engine,
with the runtime invariant monitors attached, then:

* asserts the two engines produced identical results (the fast path must
  stay byte-identical even under partitions, targeted delay, message loss
  and adaptive corruption);
* records a per-cell verdict (``ok`` / ``violation`` / ``stalled``);
* on an invariant violation, writes a **repro bundle** — the cell's spec,
  seed and the trace recorder's event tail — so the exact schedule can be
  replayed (``python -m repro faults --replay BUNDLE``).

The campaign verdict is written as a JSON artifact by the
``python -m repro faults`` CLI subcommand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, InvariantViolation
from repro.experiments.spec import ScenarioSpec, SweepSpec
from repro.faults.monitors import build_monitors, collect_margins
from repro.faults.spec import (
    CorruptionSpec,
    DelaySpec,
    FaultSpec,
    LossSpec,
    PartitionSpec,
    fault_spec_of,
    scenario_corrupted_ids,
)
from repro.protocols.topology import ShardedTopology
from repro.sim.observers import TraceRecorder
from repro.sim.runtime import SimulationConfig

#: Schema tag written into every campaign verdict artifact.
FAULTS_SCHEMA = "repro-faults/1"

#: Schema tag written into every violation repro bundle.
BUNDLE_SCHEMA = "repro-fault-bundle/1"

#: Events kept in the repro bundle's trace tail.
TRACE_TAIL_LIMIT = 200


@dataclass(frozen=True)
class FaultCase:
    """One named fault configuration in a campaign matrix."""

    label: str
    spec: FaultSpec


@dataclass
class FaultCampaign:
    """A full fault matrix: protocols × sizes × fault cases × seeds."""

    name: str
    base: ScenarioSpec
    protocols: Sequence[str]
    sizes: Sequence[int]
    cases: Sequence[FaultCase]
    seeds: Sequence[int] = (0,)
    description: str = ""

    def sweep(self) -> SweepSpec:
        """The campaign expressed as a standard sweep grid."""
        variants = [
            {"name": case.label, "faults": case.spec.to_dict()} for case in self.cases
        ]
        return SweepSpec(
            name=f"faults-{self.name}",
            base=self.base,
            axes={
                "protocol": list(self.protocols),
                "n": list(self.sizes),
                "seed": list(self.seeds),
            },
            variants=variants,
            description=self.description,
            derive_seeds=False,
        )

    def cells(self) -> List[ScenarioSpec]:
        return self.sweep().cells()

    def __len__(self) -> int:
        return len(self.cells())


# ----------------------------------------------------------------------
# Cell execution.


def _projection(result) -> Dict[str, Any]:
    """JSON-safe engine-comparison projection of a ProtocolRunResult."""
    return {
        "outputs": {
            str(node): getattr(output, "value", output)
            for node, output in sorted(result.outputs.items())
        },
        "runtime_seconds": result.runtime_seconds,
        "events_processed": result.events_processed,
        "message_count": result.message_count,
        "megabytes": result.total_megabytes,
        "decided": sorted(result.outputs),
        "honest": list(result.honest_nodes),
        "byzantine": list(result.byzantine_nodes),
    }


@dataclass
class EngineOutcome:
    """One engine's verdict for one cell."""

    engine: str
    status: str  # "ok" | "stalled" | "violation"
    projection: Optional[Dict[str, Any]] = None
    violation: Optional[Dict[str, Any]] = None
    bundle: Optional[Dict[str, Any]] = None
    margins: Dict[str, float] = field(default_factory=dict)
    margin_ratios: Dict[str, float] = field(default_factory=dict)

    def comparable(self) -> Tuple[str, Any, Any]:
        """What engine equivalence is asserted over (margins included: they
        derive purely from the observer stream, so they must match too)."""
        if self.violation is not None:
            return (
                self.status,
                (self.violation["monitor"], self.violation["detail"]),
                self.margins,
            )
        return (self.status, self.projection, self.margins)


def run_cell_engine(
    spec: ScenarioSpec,
    engine: str,
    extra_byzantine: Optional[Dict[int, Any]] = None,
    extra_observers: Optional[Sequence[Any]] = None,
) -> EngineOutcome:
    """Run one fault cell on one engine with monitors + trace recorder.

    ``extra_byzantine`` lets tests inject strategies directly (on top of the
    spec's own fault plan) — e.g. deliberately invariant-breaking ones.
    ``extra_observers`` attaches additional :class:`SimObserver` instances
    (the adversarial-schedule search uses a :class:`ScheduleDigest` here).
    """
    from repro.experiments.cells import _run_named_protocol, build_inputs

    inputs = build_inputs(spec)
    corrupted = set(scenario_corrupted_ids(spec)) | set(extra_byzantine or {})
    honest_inputs = [
        inputs[node] for node in range(spec.n) if node not in corrupted
    ] or list(inputs)
    fault_spec = fault_spec_of(spec) or FaultSpec()
    expect_termination = fault_spec.terminating() and not extra_byzantine
    recorder = TraceRecorder(limit=TRACE_TAIL_LIMIT)
    monitors = build_monitors(
        spec, honest_inputs, expect_termination=expect_termination
    )
    try:
        result, _derived = _run_named_protocol(
            spec,
            inputs,
            config=SimulationConfig(engine=engine),
            observers=[recorder, *monitors, *(extra_observers or [])],
            extra_byzantine=extra_byzantine,
        )
    except InvariantViolation as violation:
        detail = {
            "monitor": violation.monitor,
            "detail": violation.detail,
            "time": violation.time,
            "node": violation.node,
        }
        bundle = {
            "schema": BUNDLE_SCHEMA,
            "campaign_cell": spec.label,
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "seed": spec.seed,
            "engine": engine,
            "violation": detail,
            "events_seen": recorder.events_seen,
            "trace_tail": recorder.tail(),
        }
        channels = collect_margins(monitors)
        return EngineOutcome(
            engine=engine,
            status="violation",
            violation=detail,
            bundle=bundle,
            margins=channels["margins"],
            margin_ratios=channels["ratios"],
        )
    status = "ok" if result.all_decided else "stalled"
    channels = collect_margins(monitors)
    return EngineOutcome(
        engine=engine,
        status=status,
        projection=_projection(result),
        margins=channels["margins"],
        margin_ratios=channels["ratios"],
    )


@dataclass
class CellVerdict:
    """The complete verdict for one campaign cell (both engines)."""

    spec: ScenarioSpec
    fast: EngineOutcome
    reference: EngineOutcome
    bundle_path: Optional[str] = None

    @property
    def equivalent(self) -> bool:
        return self.fast.comparable() == self.reference.comparable()

    @property
    def status(self) -> str:
        if not self.equivalent:
            return "engine-mismatch"
        return self.fast.status

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "label": self.spec.label,
            "spec_hash": self.spec.spec_hash(),
            "protocol": self.spec.protocol,
            "n": self.spec.n,
            "seed": self.spec.seed,
            "status": self.status,
            "equivalent": self.equivalent,
            "expect_termination": (fault_spec_of(self.spec) or FaultSpec()).terminating(),
        }
        entry["margins"] = dict(self.fast.margins)
        entry["margin_ratios"] = dict(self.fast.margin_ratios)
        if self.fast.projection is not None:
            projection = self.fast.projection
            entry["decided"] = len(projection["decided"])
            entry["honest"] = len(projection["honest"])
            entry["events_processed"] = projection["events_processed"]
            entry["runtime_seconds"] = projection["runtime_seconds"]
        # Surface whichever engine observed a violation — a reference-only
        # violation is exactly the fastpath-divergence case this subsystem
        # exists to diagnose, so it must not vanish from the verdict.
        violation = self.fast.violation or self.reference.violation
        if violation is not None:
            entry["violation"] = violation
            entry["violation_engine"] = (
                "fast" if self.fast.violation is not None else "reference"
            )
        if self.bundle_path is not None:
            entry["bundle"] = self.bundle_path
        return entry


@dataclass
class CampaignResult:
    """All cell verdicts of one campaign run, plus summary counters."""

    name: str
    verdicts: List[CellVerdict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.verdicts)

    @property
    def summary(self) -> Dict[str, int]:
        counts = {"cells": len(self.verdicts), "ok": 0, "stalled": 0, "violations": 0, "engine_mismatches": 0}
        for verdict in self.verdicts:
            if verdict.status == "ok":
                counts["ok"] += 1
            elif verdict.status == "stalled":
                counts["stalled"] += 1
            elif verdict.status == "violation":
                counts["violations"] += 1
            elif verdict.status == "engine-mismatch":
                counts["engine_mismatches"] += 1
        return counts

    @property
    def passed(self) -> bool:
        """A campaign passes when no invariant was violated and the engines
        agreed everywhere.  ``stalled`` cells are acceptable: they only occur
        when the fault spec voids the liveness guarantee (e.g. loss windows)
        — a stall under guaranteed termination raises a violation instead."""
        summary = self.summary
        return summary["violations"] == 0 and summary["engine_mismatches"] == 0

    def best_margins(self, protocol: Optional[str] = None) -> Dict[str, float]:
        """The smallest margin observed per channel across the campaign's
        cells (optionally restricted to one protocol) — the fixed-matrix
        baseline the adversarial-schedule search has to beat."""
        best: Dict[str, float] = {}
        for verdict in self.verdicts:
            if protocol is not None and verdict.spec.protocol != protocol:
                continue
            for channel, value in verdict.fast.margins.items():
                if channel not in best or value < best[channel]:
                    best[channel] = value
        return best

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": FAULTS_SCHEMA,
            "campaign": self.name,
            "summary": self.summary,
            "passed": self.passed,
            "best_margins": {
                protocol: self.best_margins(protocol)
                for protocol in sorted({v.spec.protocol for v in self.verdicts})
            },
            "cells": [verdict.as_dict() for verdict in self.verdicts],
        }

    def write_json(self, path: str) -> Path:
        """Write the verdict artifact and return its path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        return target


def run_fault_cell(
    spec: ScenarioSpec,
    bundle_dir: Optional[str] = None,
    extra_byzantine_factory: Optional[Callable[[], Dict[int, Any]]] = None,
) -> CellVerdict:
    """Run one cell on both engines, compare them, and persist any bundle.

    ``extra_byzantine_factory`` builds a *fresh* strategy map per engine run
    (strategies are stateful), used by tests to inject invariant-breaking
    behaviour.
    """
    fast = run_cell_engine(
        spec,
        "fast",
        extra_byzantine=extra_byzantine_factory() if extra_byzantine_factory else None,
    )
    reference = run_cell_engine(
        spec,
        "reference",
        extra_byzantine=extra_byzantine_factory() if extra_byzantine_factory else None,
    )
    verdict = CellVerdict(spec=spec, fast=fast, reference=reference)
    if bundle_dir is not None:
        # Persist every engine's bundle: when only the reference engine
        # violated (an engine divergence), its bundle is the sole repro.
        for outcome in (fast, reference):
            if outcome.bundle is None:
                continue
            directory = Path(bundle_dir)
            directory.mkdir(parents=True, exist_ok=True)
            bundle_path = directory / (
                f"VIOLATION_{spec.spec_hash()}_{outcome.engine}.json"
            )
            bundle_path.write_text(
                json.dumps(outcome.bundle, indent=2, sort_keys=True) + "\n"
            )
            if verdict.bundle_path is None:
                verdict.bundle_path = str(bundle_path)
    return verdict


def run_campaign(
    campaign: FaultCampaign,
    bundle_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Execute every cell of ``campaign`` and return the aggregate result."""
    say = progress or (lambda message: None)
    cells = campaign.cells()
    result = CampaignResult(name=campaign.name)
    for index, spec in enumerate(cells):
        say(
            f"[faults] [{index + 1}/{len(cells)}] {spec.label} "
            f"protocol={spec.protocol} n={spec.n} seed={spec.seed}"
        )
        verdict = run_fault_cell(spec, bundle_dir=bundle_dir)
        if verdict.status != "ok":
            say(f"[faults]   -> {verdict.status}")
        result.verdicts.append(verdict)
    return result


@dataclass
class ReplayReport:
    """Outcome of replaying a violation repro bundle against its record.

    ``reproduced`` is the stale-corpus check: the engine that recorded the
    violation must observe the *same* violation again (same monitor, same
    detail — runs are deterministic, so anything less means the bundle no
    longer describes the current code's behaviour).
    """

    verdict: CellVerdict
    recorded_engine: str
    recorded_violation: Dict[str, Any]

    @property
    def replayed_violation(self) -> Optional[Dict[str, Any]]:
        outcome = (
            self.verdict.fast
            if self.recorded_engine == "fast"
            else self.verdict.reference
        )
        return outcome.violation

    @property
    def reproduced(self) -> bool:
        replayed = self.replayed_violation
        if replayed is None:
            return False
        return (
            replayed["monitor"] == self.recorded_violation.get("monitor")
            and replayed["detail"] == self.recorded_violation.get("detail")
        )

    def describe(self) -> str:
        if self.reproduced:
            return "violation reproduced"
        replayed = self.replayed_violation
        recorded = self.recorded_violation
        if replayed is None:
            return (
                f"stale bundle: recorded {recorded.get('monitor')!r} violation "
                f"no longer reproduces (replay status: {self.verdict.status})"
            )
        return (
            "stale bundle: replay violated "
            f"{replayed['monitor']!r} ({replayed['detail']}) but the bundle "
            f"recorded {recorded.get('monitor')!r} ({recorded.get('detail')})"
        )


def _load_bundle(path: str) -> Dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != BUNDLE_SCHEMA:
        raise ConfigurationError(
            f"{path} is not a fault repro bundle (schema {data.get('schema')!r})"
        )
    return data


def replay_bundle(path: str) -> CellVerdict:
    """Re-run the cell recorded in a violation repro bundle.

    Rebuilds the exact :class:`ScenarioSpec` (spec + seed are in the bundle)
    and runs it on both engines with monitors attached — the violation, being
    deterministic, reproduces.
    """
    data = _load_bundle(path)
    spec = ScenarioSpec.from_dict(data["spec"])
    return run_fault_cell(spec)


def replay_bundle_report(path: str) -> ReplayReport:
    """Replay a bundle *and* compare against its recorded verdict.

    This is the stale-corpus detector behind ``repro faults --replay``: the
    CLI exits non-zero when :attr:`ReplayReport.reproduced` is false.
    """
    data = _load_bundle(path)
    verdict = replay_bundle(path)
    return ReplayReport(
        verdict=verdict,
        recorded_engine=str(data.get("engine", "fast")),
        recorded_violation=dict(data.get("violation", {})),
    )


# ----------------------------------------------------------------------
# Campaign presets.


def _base_scenario() -> ScenarioSpec:
    return ScenarioSpec(testbed="lan", workload="spread", delta=4.0, centre=100.0, max_rounds=4)


def _common_cases() -> List[FaultCase]:
    return [
        FaultCase("baseline", FaultSpec()),
        FaultCase(
            "crash-static",
            FaultSpec(corruptions=(CorruptionSpec("crash"),)),
        ),
        FaultCase(
            "crash-adaptive",
            FaultSpec(
                corruptions=(CorruptionSpec("crash", activation_time=0.05),)
            ),
        ),
        FaultCase(
            "delay-holdback",
            FaultSpec(corruptions=(CorruptionSpec("delay"),)),
        ),
        FaultCase(
            "partition-heal",
            FaultSpec(
                partitions=(
                    PartitionSpec(start=0.0, end=0.05, groups=((0,),)),
                )
            ),
        ),
        FaultCase(
            "targeted-delay",
            FaultSpec(
                delays=(DelaySpec(start=0.0, end=0.2, extra=0.05, receivers=(0,)),)
            ),
        ),
        FaultCase(
            "loss-window",
            FaultSpec(losses=(LossSpec(start=0.0, end=0.02, probability=0.2),)),
        ),
    ]


def tiny_campaign() -> FaultCampaign:
    """Two-cell-per-case campaign used by tests and ultra-fast CI checks."""
    return FaultCampaign(
        name="tiny",
        base=_base_scenario(),
        protocols=("delphi",),
        sizes=(4,),
        cases=[case for case in _common_cases() if case.label in ("baseline", "crash-static")],
        seeds=(0,),
        description="minimal matrix for tests: delphi n=4, baseline + crash",
    )


def smoke_campaign() -> FaultCampaign:
    """The committed CI matrix: protocol × fault case × schedule × n."""
    return FaultCampaign(
        name="smoke",
        base=_base_scenario(),
        protocols=("delphi", "fin"),
        sizes=(4, 7),
        cases=_common_cases(),
        seeds=(0,),
        description="delphi+fin, n in {4,7}, all fault cases, both engines",
    )


def sharded_campaign() -> FaultCampaign:
    """Two-level sharded-Delphi matrix: Byzantine representatives and
    whole-group partitions on top of the common baseline.

    The representative-targeting cases pin explicit node ids (the elected
    reps depend on the topology seed, not the highest-ids convention).  A
    crashed representative stalls its group *and* the inter-group round —
    no honest node decides a wrong value, but liveness is lost, so those
    cells set ``expect_termination=False`` and must come back "stalled"
    with clean margins.  A delaying representative and an in-budget member
    crash must still terminate; so must a healed whole-group partition.
    """
    n = 12
    group_size = 4
    topology = ShardedTopology(n, group_size=group_size, seed=0)
    reps = topology.representatives
    cases = [
        FaultCase("baseline", FaultSpec()),
        FaultCase(
            "rep-crash",
            FaultSpec(
                corruptions=(CorruptionSpec("crash", nodes=(reps[0],)),),
                expect_termination=False,
            ),
        ),
        FaultCase(
            # The holdback strategy keeps its last batches queued forever,
            # so a delaying representative starves its group of the FINAL
            # fan-down: the other groups decide, this one stalls.  Clean
            # margins, no termination guarantee.
            "rep-delay-holdback",
            FaultSpec(
                corruptions=(CorruptionSpec("delay", nodes=(reps[1],)),),
                expect_termination=False,
            ),
        ),
        FaultCase(
            "members-crash-in-budget",
            FaultSpec(
                corruptions=(
                    CorruptionSpec(
                        "crash", nodes=topology.safe_corrupted_ids(2)
                    ),
                ),
            ),
        ),
        FaultCase(
            "group-partition-heal",
            FaultSpec(
                partitions=(
                    PartitionSpec(
                        start=0.0, end=0.05, groups=(topology.groups[1],)
                    ),
                )
            ),
        ),
    ]
    return FaultCampaign(
        name="sharded",
        base=_base_scenario().replace(group_size=group_size),
        protocols=("sharded-delphi",),
        sizes=(n,),
        cases=cases,
        seeds=(0,),
        description=(
            "sharded-delphi n=12 (3 groups of 4): Byzantine reps, in-budget "
            "member crashes, whole-group partition"
        ),
    )


def full_campaign() -> FaultCampaign:
    """The larger overnight matrix (more protocols, sizes and seeds)."""
    return FaultCampaign(
        name="full",
        base=_base_scenario(),
        protocols=("delphi", "dora", "fin", "hbbft"),
        sizes=(4, 7, 10),
        cases=_common_cases(),
        seeds=(0, 1, 2),
        description="delphi/dora/fin/hbbft, n in {4,7,10}, 3 seeds per cell",
    )


#: Registry of named campaigns for the CLI.
CAMPAIGNS: Dict[str, Tuple[Callable[[], FaultCampaign], str]] = {
    "tiny": (tiny_campaign, "minimal matrix for tests (delphi n=4)"),
    "smoke": (smoke_campaign, "CI matrix: delphi+fin x faults x {4,7}"),
    "sharded": (
        sharded_campaign,
        "two-level matrix: sharded-delphi x {byz reps, group partition}",
    ),
    "full": (full_campaign, "overnight matrix: 4 protocols x faults x sizes x seeds"),
}


def campaign(name: str) -> FaultCampaign:
    """Look up a registered campaign by name."""
    try:
        factory, _description = CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise ConfigurationError(f"unknown campaign {name!r} (known: {known})")
    return factory()


def list_campaigns() -> List[Tuple[str, str, int]]:
    """(name, description, cell count) rows for the CLI listing."""
    return [
        (name, description, len(factory()))
        for name, (factory, description) in sorted(CAMPAIGNS.items())
    ]
