"""Coverage-guided adversarial-schedule search over fault specs.

The fixed :mod:`repro.faults.campaign` matrices answer "do these known fault
shapes break an invariant?".  This module answers the harder question the
paper's schedule-dependent claims need: *how close can any schedule get?*
It runs a deterministic, seeded mutation search whose fitness signal is the
monitors' margin channels (:func:`repro.faults.monitors.collect_margins`):

* ``epsilon_margin`` — smallest observed ``epsilon - spread`` over honest
  decision pairs (epsilon-agreement headroom);
* ``hull_distance`` — closest any honest output came to the validity-hull
  boundary;
* ``termination_slack`` — decision-time straggler ratio (1 = simultaneous,
  towards 0 = one node barely decided, 0 = stall).

Mutators perturb :class:`~repro.faults.spec.FaultSpec` fields (corruption
strategy/count/activation, partition/delay/loss windows), the run seed (which
drives latency sampling and delivery tiebreaks), the workload, testbed and
system size.  Runs that *almost* violate an invariant — low normalised margin
or a never-seen :class:`~repro.sim.observers.ScheduleDigest` — are kept and
mutated further.  Any violation or retained near-miss is greedily shrunk
before it is reported or promoted into the persistent corpus
(``tests/data/adversarial_corpus.json``), which tier-1 replays on both
engines.

Everything is deterministic given the search seed: same seed → byte-identical
leaderboard payload.  No wall clocks, no unseeded randomness, no sets
iterated into output.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.spec import ScenarioSpec
from repro.faults.campaign import CellVerdict, run_cell_engine, run_fault_cell
from repro.faults.spec import (
    CorruptionSpec,
    DelaySpec,
    FaultSpec,
    LossSpec,
    PartitionSpec,
    fault_spec_of,
)
from repro.protocols.base import byzantine_bound
from repro.protocols.registry import (
    HIERARCHICAL_AGREEMENT,
    agreement_kind,
    is_known_protocol,
    protocol_names,
)
from repro.sim.observers import ScheduleDigest

#: Schema tag of the fuzz leaderboard artifact.
FUZZ_SCHEMA = "repro-fuzz/1"

#: Schema tag of the persistent adversarial corpus.
CORPUS_SCHEMA = "repro-adversarial-corpus/1"

#: Default committed corpus location (repo-relative).
DEFAULT_CORPUS_PATH = "tests/data/adversarial_corpus.json"

#: Search grids.  Values are drawn from fixed lattices so mutated specs stay
#: JSON-clean and the shrinker's simplifications land on grid points too.
WORKLOADS = ("spread", "bitcoin", "sensors", "normal")
TESTBEDS = ("lan", "aws")
RUN_SEEDS = tuple(range(48))
SIZES = (4, 5, 7)
STRATEGIES = ("crash", "delay", "equivocate", "random-bit", "spam")
ACTIVATIONS = (0.0, 0.02, 0.05, 0.1)
WINDOW_STARTS = (0.0, 0.02, 0.05, 0.1)
WINDOW_SPANS = (0.02, 0.05, 0.1, 0.2)
DELAY_EXTRAS = (0.02, 0.05, 0.08)
LOSS_PROBABILITIES = (0.1, 0.2, 0.3)
POISON_OFFSETS = (-16.0, -8.0, -4.0, 4.0, 8.0, 16.0)


# ----------------------------------------------------------------------
# Mutators.  Each is a pure function (rng, spec) -> spec drawing randomness
# only from the passed ``random.Random``; inapplicable mutators return the
# spec unchanged so the driver can simply try another.


def _faults_of(spec: ScenarioSpec) -> FaultSpec:
    return fault_spec_of(spec) or FaultSpec()


def _with_faults(spec: ScenarioSpec, faults: FaultSpec) -> ScenarioSpec:
    return spec.replace(faults=faults.to_dict())


def _budget_used(faults: FaultSpec, n: int) -> int:
    return sum(corruption.resolved_count(n) for corruption in faults.corruptions)


def _trim_to_budget(faults: FaultSpec, n: int) -> FaultSpec:
    """Drop trailing corruption groups until the ``t`` budget holds."""
    groups = list(faults.corruptions)
    while groups and sum(g.resolved_count(n) for g in groups) > byzantine_bound(n):
        groups.pop()
    if len(groups) == len(faults.corruptions):
        return faults
    return FaultSpec(
        corruptions=tuple(groups),
        partitions=faults.partitions,
        delays=faults.delays,
        losses=faults.losses,
        allow_over_budget=faults.allow_over_budget,
        expect_termination=faults.expect_termination,
    )


def _mut_reseed(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    return spec.replace(seed=rng.choice(RUN_SEEDS))


def _mut_workload(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    return spec.replace(workload=rng.choice(WORKLOADS))


def _mut_testbed(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    return spec.replace(testbed=rng.choice(TESTBEDS))


def _mut_resize(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    n = rng.choice(SIZES)
    faults = _trim_to_budget(_faults_of(spec), n)
    return _with_faults(spec.replace(n=n), faults)


def _mut_add_corruption(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    faults = _faults_of(spec)
    if _budget_used(faults, spec.n) + 1 > byzantine_bound(spec.n):
        return spec
    strategy = rng.choice(STRATEGIES)
    group = CorruptionSpec(
        strategy=strategy, count=1, activation_time=rng.choice(ACTIVATIONS)
    )
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=faults.corruptions + (group,),
            partitions=faults.partitions,
            delays=faults.delays,
            losses=faults.losses,
        ),
    )


def _mut_poison_value(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    """Add (or re-value) a poison-input corruption — delphi only."""
    if spec.protocol != "delphi":
        return spec
    faults = _faults_of(spec)
    value = spec.centre + rng.choice(POISON_OFFSETS) * max(spec.delta, 1.0) / 4.0
    groups = list(faults.corruptions)
    for index, group in enumerate(groups):
        if group.strategy == "poison-input":
            groups[index] = CorruptionSpec(
                strategy="poison-input",
                count=group.count,
                activation_time=group.activation_time,
                options={"value": value},
            )
            break
    else:
        if _budget_used(faults, spec.n) + 1 > byzantine_bound(spec.n):
            return spec
        groups.append(
            CorruptionSpec(strategy="poison-input", count=1, options={"value": value})
        )
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=tuple(groups),
            partitions=faults.partitions,
            delays=faults.delays,
            losses=faults.losses,
        ),
    )


def _mut_drop_corruption(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    faults = _faults_of(spec)
    if not faults.corruptions:
        return spec
    groups = list(faults.corruptions)
    groups.pop(rng.randrange(len(groups)))
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=tuple(groups),
            partitions=faults.partitions,
            delays=faults.delays,
            losses=faults.losses,
        ),
    )


def _mut_retime_corruption(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    faults = _faults_of(spec)
    if not faults.corruptions:
        return spec
    groups = list(faults.corruptions)
    index = rng.randrange(len(groups))
    group = groups[index]
    groups[index] = CorruptionSpec(
        strategy=group.strategy,
        count=group.count,
        activation_time=rng.choice(ACTIVATIONS),
        options=dict(group.options),
    )
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=tuple(groups),
            partitions=faults.partitions,
            delays=faults.delays,
            losses=faults.losses,
        ),
    )


def _mut_add_delay(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    faults = _faults_of(spec)
    start = rng.choice(WINDOW_STARTS)
    window = DelaySpec(
        start=start,
        end=start + rng.choice(WINDOW_SPANS),
        extra=rng.choice(DELAY_EXTRAS),
        receivers=(rng.randrange(spec.n),) if rng.random() < 0.7 else None,
    )
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=faults.corruptions,
            partitions=faults.partitions,
            delays=faults.delays + (window,),
            losses=faults.losses,
        ),
    )


def _mut_add_partition(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    faults = _faults_of(spec)
    start = rng.choice(WINDOW_STARTS[:3])
    window = PartitionSpec(
        start=start,
        end=start + rng.choice(WINDOW_SPANS[:2]),
        groups=((rng.randrange(spec.n),),),
        heal_delay=rng.choice((0.0, 0.01)),
    )
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=faults.corruptions,
            partitions=faults.partitions + (window,),
            delays=faults.delays,
            losses=faults.losses,
        ),
    )


def _mut_add_loss(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    faults = _faults_of(spec)
    start = rng.choice(WINDOW_STARTS[:2])
    window = LossSpec(
        start=start,
        end=start + rng.choice(WINDOW_SPANS[:2]),
        probability=rng.choice(LOSS_PROBABILITIES),
    )
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=faults.corruptions,
            partitions=faults.partitions,
            delays=faults.delays,
            losses=faults.losses + (window,),
        ),
    )


def _mut_drop_window(rng: random.Random, spec: ScenarioSpec) -> ScenarioSpec:
    faults = _faults_of(spec)
    pools: List[Tuple[str, List[Any]]] = [
        (kind, list(windows))
        for kind, windows in (
            ("partitions", faults.partitions),
            ("delays", faults.delays),
            ("losses", faults.losses),
        )
        if windows
    ]
    if not pools:
        return spec
    kind, windows = pools[rng.randrange(len(pools))]
    windows.pop(rng.randrange(len(windows)))
    parts = {
        "partitions": list(faults.partitions),
        "delays": list(faults.delays),
        "losses": list(faults.losses),
    }
    parts[kind] = windows
    return _with_faults(
        spec,
        FaultSpec(
            corruptions=faults.corruptions,
            partitions=tuple(parts["partitions"]),
            delays=tuple(parts["delays"]),
            losses=tuple(parts["losses"]),
        ),
    )


#: Ordered mutator registry — the order is part of the deterministic contract.
MUTATORS: Tuple[Tuple[str, Callable[[random.Random, ScenarioSpec], ScenarioSpec]], ...] = (
    ("reseed", _mut_reseed),
    ("workload", _mut_workload),
    ("testbed", _mut_testbed),
    ("resize", _mut_resize),
    ("add-corruption", _mut_add_corruption),
    ("poison-value", _mut_poison_value),
    ("drop-corruption", _mut_drop_corruption),
    ("retime-corruption", _mut_retime_corruption),
    ("add-delay", _mut_add_delay),
    ("add-partition", _mut_add_partition),
    ("add-loss", _mut_add_loss),
    ("drop-window", _mut_drop_window),
)


def mutate(rng: random.Random, spec: ScenarioSpec, attempts: int = 4) -> ScenarioSpec:
    """Apply one randomly chosen mutator; retry until the spec changes."""
    for _ in range(attempts):
        _name, mutator = MUTATORS[rng.randrange(len(MUTATORS))]
        mutated = mutator(rng, spec)
        if mutated.spec_hash() != spec.spec_hash():
            return mutated
    return spec


# ----------------------------------------------------------------------
# Evaluation.


@dataclass(frozen=True)
class Evaluation:
    """One engine run of one candidate schedule, with its fitness signal."""

    spec: ScenarioSpec
    status: str
    margins: Mapping[str, float]
    ratios: Mapping[str, float]
    violation: Optional[Mapping[str, Any]]
    digest: str

    @property
    def fitness(self) -> float:
        """Lower is more adversarial; violations rank below every margin."""
        if self.violation is not None:
            return -1.0
        if not self.ratios:
            return 1.0
        return min(self.ratios.values())

    def as_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.spec_hash(),
            "protocol": self.spec.protocol,
            "n": self.spec.n,
            "seed": self.spec.seed,
            "workload": self.spec.workload,
            "status": self.status,
            "fitness": self.fitness,
            "margins": dict(self.margins),
            "ratios": dict(self.ratios),
            "digest": self.digest,
        }
        if self.violation is not None:
            entry["violation"] = dict(self.violation)
        return entry


# ----------------------------------------------------------------------
# Corpus persistence.


def load_corpus(path: str) -> List[Dict[str, Any]]:
    """Load corpus entries; an absent file is an empty corpus."""
    target = Path(path)
    if not target.exists():
        return []
    data = json.loads(target.read_text())
    if data.get("schema") != CORPUS_SCHEMA:
        raise ConfigurationError(
            f"{path} is not an adversarial corpus (schema {data.get('schema')!r})"
        )
    return list(data.get("entries", []))


def save_corpus(path: str, entries: Sequence[Mapping[str, Any]]) -> Path:
    """Write the corpus, deduplicated by spec hash, sorted for stable diffs."""
    unique: Dict[str, Mapping[str, Any]] = {}
    for entry in entries:
        unique[str(entry["spec_hash"])] = entry
    ordered = sorted(unique.values(), key=lambda e: (str(e["label"]), str(e["spec_hash"])))
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": CORPUS_SCHEMA, "entries": list(ordered)}
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def corpus_entry(
    evaluation: Evaluation, channel: str, origin: str
) -> Dict[str, Any]:
    """The JSON-safe committed form of one shrunk schedule."""
    return {
        "label": f"{evaluation.spec.protocol}-{channel}",
        "channel": channel,
        "origin": origin,
        "spec": evaluation.spec.to_dict(),
        "spec_hash": evaluation.spec.spec_hash(),
        "status": evaluation.status,
        "margins": dict(evaluation.margins),
        "ratios": dict(evaluation.ratios),
    }


def replay_corpus_entry(entry: Mapping[str, Any]) -> Tuple[CellVerdict, List[str]]:
    """Replay one corpus entry on both engines and diff against its record.

    Returns the verdict plus a list of problems (empty = faithful replay):
    engine divergence, status drift, or margin drift all make the entry
    stale — runs are deterministic, so any drift means the committed
    schedule no longer exercises what it was saved for.
    """
    spec = ScenarioSpec.from_dict(entry["spec"])
    verdict = run_fault_cell(spec)
    problems: List[str] = []
    if not verdict.equivalent:
        problems.append("engines diverged on replay")
    if verdict.status != entry["status"]:
        problems.append(
            f"status drifted: recorded {entry['status']!r}, replayed {verdict.status!r}"
        )
    recorded = {k: float(v) for k, v in entry.get("margins", {}).items()}
    if dict(verdict.fast.margins) != recorded:
        problems.append(
            f"margins drifted: recorded {recorded}, replayed {dict(verdict.fast.margins)}"
        )
    return verdict, problems


# ----------------------------------------------------------------------
# The search engine.


def _base_spec(protocol: str) -> ScenarioSpec:
    """Per-protocol starting point — mirrors the fixed campaigns' base cell
    so fuzz margins are directly comparable to the smoke-matrix baseline."""
    spec = ScenarioSpec(
        protocol=protocol,
        n=4,
        testbed="lan",
        workload="spread",
        delta=4.0,
        centre=100.0,
        max_rounds=4,
        seed=0,
    )
    if agreement_kind(protocol) == HIERARCHICAL_AGREEMENT:
        # Two-level protocols need at least two groups to exercise the
        # representative round; the resize mutator keeps the group size.
        spec = spec.replace(n=8, group_size=4)
    return spec


@dataclass
class FuzzResult:
    """Everything one search run produced, JSON-safe and deterministic."""

    seed: int
    budget: int
    protocols: Tuple[str, ...]
    min_margin: float
    engine: str
    runs: int = 0
    cache_hits: int = 0
    shrink_runs: int = 0
    best_margins: Dict[str, Dict[str, float]] = field(default_factory=dict)
    best_ratios: Dict[str, Dict[str, float]] = field(default_factory=dict)
    baseline_margins: Dict[str, Dict[str, float]] = field(default_factory=dict)
    leaderboard: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[Dict[str, Any]] = field(default_factory=list)
    corpus_candidates: List[Dict[str, Any]] = field(default_factory=list)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": FUZZ_SCHEMA,
            "seed": self.seed,
            "budget": self.budget,
            "protocols": list(self.protocols),
            "min_margin": self.min_margin,
            "engine": self.engine,
            "runs": self.runs,
            "cache_hits": self.cache_hits,
            "shrink_runs": self.shrink_runs,
            "baseline_margins": self.baseline_margins,
            "best_margins": self.best_margins,
            "best_ratios": self.best_ratios,
            "leaderboard": self.leaderboard,
            "violations": self.violations,
            "corpus_candidates": self.corpus_candidates,
        }

    def write_json(self, path: str) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        return target


class ScheduleSearch:
    """Deterministic coverage-guided mutation search over fault schedules."""

    def __init__(
        self,
        protocols: Sequence[str] = ("delphi", "fin"),
        budget: int = 200,
        seed: int = 0,
        min_margin: float = 0.9,
        engine: str = "fast",
        corpus: Sequence[Mapping[str, Any]] = (),
        max_population: int = 24,
        max_shrink_runs: int = 120,
        leaderboard_size: int = 5,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if budget < 1:
            raise ConfigurationError(f"fuzz budget must be >= 1, got {budget}")
        if not protocols:
            raise ConfigurationError("fuzz needs at least one protocol")
        for protocol in protocols:
            if not is_known_protocol(protocol):
                raise ConfigurationError(
                    f"unknown protocol {protocol!r} "
                    f"(known: {', '.join(protocol_names())})"
                )
        self.protocols = tuple(protocols)
        self.budget = budget
        self.seed = seed
        self.min_margin = min_margin
        self.engine = engine
        self.corpus = list(corpus)
        self.max_population = max_population
        self.max_shrink_runs = max_shrink_runs
        self.leaderboard_size = leaderboard_size
        self.progress = progress or (lambda message: None)
        self.rng = random.Random(seed)
        self.runs = 0
        self.cache_hits = 0
        self.shrink_runs = 0
        self._cache: Dict[str, Evaluation] = {}
        self._seen_digests: Dict[str, str] = {}
        # per-protocol population + per-(protocol, channel) best ratios
        self._population: Dict[str, List[Evaluation]] = {p: [] for p in self.protocols}
        self._best_ratio: Dict[Tuple[str, str], float] = {}
        self._best_eval: Dict[Tuple[str, str], Evaluation] = {}
        self.violations: List[Evaluation] = []

    # ------------------------------------------------------------------
    def evaluate(self, spec: ScenarioSpec, count_budget: bool = True) -> Evaluation:
        """Run one candidate on the search engine (cached by spec hash)."""
        key = spec.spec_hash()
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        digest_observer = ScheduleDigest()
        outcome = run_cell_engine(spec, self.engine, extra_observers=[digest_observer])
        evaluation = Evaluation(
            spec=spec,
            status=outcome.status,
            margins=dict(outcome.margins),
            ratios=dict(outcome.margin_ratios),
            violation=None if outcome.violation is None else dict(outcome.violation),
            digest=digest_observer.digest,
        )
        self._cache[key] = evaluation
        if count_budget:
            self.runs += 1
        else:
            self.shrink_runs += 1
        return evaluation

    # ------------------------------------------------------------------
    def _record(self, evaluation: Evaluation) -> bool:
        """Fold an evaluation into bests/population; True if it was kept."""
        protocol = evaluation.spec.protocol
        improved = False
        for channel, ratio in sorted(evaluation.ratios.items()):
            key = (protocol, channel)
            if key not in self._best_ratio or ratio < self._best_ratio[key]:
                self._best_ratio[key] = ratio
                self._best_eval[key] = evaluation
                improved = True
        if evaluation.violation is not None:
            self.violations.append(evaluation)
            improved = True
        novel = evaluation.digest not in self._seen_digests
        self._seen_digests.setdefault(evaluation.digest, evaluation.spec.spec_hash())
        keep = improved or (novel and evaluation.fitness < self.min_margin)
        if keep:
            population = self._population[protocol]
            population.append(evaluation)
            if len(population) > self.max_population:
                worst = max(range(len(population)), key=lambda i: population[i].fitness)
                population.pop(worst)
        return keep

    def _pick_parent(self) -> Evaluation:
        """Pick a protocol uniformly, then a size-2 tournament within it.

        Uniform protocol choice matters: fitness scales are not comparable
        across protocols (binary-output protocols legitimately sit at the
        hull boundary, margin 0), so a shared pool would starve the others.
        """
        pools = [p for p in self._population.values() if p]
        pool = pools[self.rng.randrange(len(pools))]
        first = pool[self.rng.randrange(len(pool))]
        second = pool[self.rng.randrange(len(pool))]
        return first if first.fitness <= second.fitness else second

    # ------------------------------------------------------------------
    def _shrink_variants(self, spec: ScenarioSpec) -> List[ScenarioSpec]:
        """Candidate simplifications, most aggressive first (deterministic)."""
        variants: List[ScenarioSpec] = []
        faults = _faults_of(spec)
        for index in range(len(faults.corruptions)):
            groups = list(faults.corruptions)
            groups.pop(index)
            variants.append(
                _with_faults(
                    spec,
                    FaultSpec(
                        corruptions=tuple(groups),
                        partitions=faults.partitions,
                        delays=faults.delays,
                        losses=faults.losses,
                    ),
                )
            )
        for kind in ("partitions", "delays", "losses"):
            windows = getattr(faults, kind)
            for index in range(len(windows)):
                parts = {
                    "partitions": list(faults.partitions),
                    "delays": list(faults.delays),
                    "losses": list(faults.losses),
                }
                parts[kind].pop(index)
                variants.append(
                    _with_faults(
                        spec,
                        FaultSpec(
                            corruptions=faults.corruptions,
                            partitions=tuple(parts["partitions"]),
                            delays=tuple(parts["delays"]),
                            losses=tuple(parts["losses"]),
                        ),
                    )
                )
        for index, group in enumerate(faults.corruptions):
            if group.activation_time > 0.0:
                groups = list(faults.corruptions)
                groups[index] = CorruptionSpec(
                    strategy=group.strategy,
                    count=group.count,
                    activation_time=0.0,
                    options=dict(group.options),
                )
                variants.append(
                    _with_faults(
                        spec,
                        FaultSpec(
                            corruptions=tuple(groups),
                            partitions=faults.partitions,
                            delays=faults.delays,
                            losses=faults.losses,
                        ),
                    )
                )
        if spec.n > min(SIZES):
            variants.append(
                _with_faults(
                    spec.replace(n=min(SIZES)),
                    _trim_to_budget(faults, min(SIZES)),
                )
            )
        if spec.testbed != "lan":
            variants.append(spec.replace(testbed="lan"))
        if spec.seed != 0:
            variants.append(spec.replace(seed=0))
        if spec.workload != "spread":
            variants.append(spec.replace(workload="spread"))
        return variants

    def shrink(self, evaluation: Evaluation) -> Evaluation:
        """Greedily minimise a schedule while it stays as interesting.

        A violating schedule must keep violating the *same* monitor; a
        near-miss must keep its minimum normalised margin no worse than the
        original's.  Shrink runs are bounded by ``max_shrink_runs`` and do
        not consume the search budget.
        """
        if evaluation.violation is not None:
            monitor = evaluation.violation["monitor"]

            def still_interesting(candidate: Evaluation) -> bool:
                return (
                    candidate.violation is not None
                    and candidate.violation["monitor"] == monitor
                )

        else:
            bar = evaluation.fitness

            def still_interesting(candidate: Evaluation) -> bool:
                return candidate.violation is None and candidate.fitness <= bar

        current = evaluation
        shrunk = True
        while shrunk and self.shrink_runs < self.max_shrink_runs:
            shrunk = False
            for variant in self._shrink_variants(current.spec):
                if self.shrink_runs >= self.max_shrink_runs:
                    break
                if variant.spec_hash() == current.spec.spec_hash():
                    continue
                try:
                    candidate = self.evaluate(variant, count_budget=False)
                except ConfigurationError:
                    continue
                if still_interesting(candidate):
                    current = candidate
                    shrunk = True
                    break
        return current

    # ------------------------------------------------------------------
    def run(self) -> FuzzResult:
        """Execute the full search: seed → mutate → shrink → report."""
        result = FuzzResult(
            seed=self.seed,
            budget=self.budget,
            protocols=self.protocols,
            min_margin=self.min_margin,
            engine=self.engine,
        )
        # Seed the population: each protocol's base cell, then any committed
        # corpus entries for the selected protocols.
        seeds: List[ScenarioSpec] = [_base_spec(p) for p in self.protocols]
        for entry in self.corpus:
            spec = ScenarioSpec.from_dict(entry["spec"])
            if spec.protocol in self.protocols:
                seeds.append(spec)
        baseline: Dict[str, Dict[str, float]] = {}
        for spec in seeds:
            if self.runs >= self.budget:
                break
            evaluation = self.evaluate(spec)
            self._record(evaluation)
            if spec.workload == "spread" and not fault_spec_of(spec):
                baseline[spec.protocol] = dict(evaluation.margins)
            self.progress(
                f"[fuzz] seed {spec.protocol} n={spec.n}: fitness={evaluation.fitness:.4f}"
            )
        result.baseline_margins = baseline
        # Mutation loop.
        stall_guard = self.budget * 40
        iterations = 0
        while self.runs < self.budget and iterations < stall_guard:
            iterations += 1
            parent = self._pick_parent()
            mutant_spec = mutate(self.rng, parent.spec)
            if mutant_spec.spec_hash() in self._cache:
                self.cache_hits += 1
                continue
            evaluation = self.evaluate(mutant_spec)
            kept = self._record(evaluation)
            if evaluation.violation is not None:
                self.progress(
                    f"[fuzz] VIOLATION {evaluation.violation['monitor']} "
                    f"at run {self.runs}: {mutant_spec.label}"
                )
            elif kept:
                self.progress(
                    f"[fuzz] run {self.runs}/{self.budget}: kept "
                    f"{mutant_spec.protocol} fitness={evaluation.fitness:.4f}"
                )
        # Shrink violations first (they own the exit code), then the best
        # near-miss per (protocol, channel) that beat its protocol baseline.
        for violation in list(self.violations):
            shrunk = self.shrink(violation)
            result.violations.append(
                {**shrunk.as_dict(), "shrunk_from": violation.spec.spec_hash()}
            )
        for (protocol, channel), best in sorted(self._best_eval.items()):
            base_margin = baseline.get(protocol, {}).get(channel)
            margin = best.margins.get(channel)
            if best.violation is not None or margin is None:
                continue
            if base_margin is not None and not margin < base_margin:
                continue
            shrunk = self.shrink(best)
            # Shrinking preserves min fitness, not necessarily this channel's
            # margin — fall back to the unshrunk winner if the channel regressed.
            if shrunk.margins.get(channel, float("inf")) > margin:
                shrunk = best
            result.corpus_candidates.append(
                corpus_entry(shrunk, channel, origin=f"fuzz-seed-{self.seed}")
            )
            self.progress(
                f"[fuzz] corpus candidate {protocol}/{channel}: "
                f"margin {shrunk.margins.get(channel)}"
            )
        # Leaderboard: top near-misses per protocol by (fitness, spec_hash).
        for protocol in self.protocols:
            ranked = sorted(
                {e.spec.spec_hash(): e for e in self._population[protocol]}.values(),
                key=lambda e: (e.fitness, e.spec.spec_hash()),
            )
            for rank, evaluation in enumerate(ranked[: self.leaderboard_size], start=1):
                result.leaderboard.append({"rank": rank, **evaluation.as_dict()})
        result.runs = self.runs
        result.cache_hits = self.cache_hits
        result.shrink_runs = self.shrink_runs
        result.best_margins = {
            protocol: {
                channel: self._best_eval[(protocol, channel)].margins[channel]
                for (p, channel) in sorted(self._best_eval)
                if p == protocol and channel in self._best_eval[(protocol, channel)].margins
            }
            for protocol in self.protocols
        }
        result.best_ratios = {
            protocol: {
                channel: ratio
                for (p, channel), ratio in sorted(self._best_ratio.items())
                if p == protocol
            }
            for protocol in self.protocols
        }
        return result


def fuzz_schedules(
    protocols: Sequence[str] = ("delphi", "fin"),
    budget: int = 200,
    seed: int = 0,
    min_margin: float = 0.9,
    engine: str = "fast",
    corpus: Sequence[Mapping[str, Any]] = (),
    progress: Optional[Callable[[str], None]] = None,
    **kwargs: Any,
) -> FuzzResult:
    """Convenience wrapper: build a :class:`ScheduleSearch` and run it."""
    search = ScheduleSearch(
        protocols=protocols,
        budget=budget,
        seed=seed,
        min_margin=min_margin,
        engine=engine,
        corpus=corpus,
        progress=progress,
        **kwargs,
    )
    return search.run()
