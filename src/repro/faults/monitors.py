"""Runtime protocol-invariant monitors.

Monitors are :class:`~repro.sim.observers.SimObserver` subclasses hooked into
the simulation runtime (both engines call them identically).  Each watches
one property the paper proves and **fails fast**: the moment a decided output
breaks the property the monitor raises
:class:`~repro.errors.InvariantViolation`, so the violating schedule is still
in the trace recorder's tail and the campaign layer can emit a seed +
event-trace repro bundle (see ``docs/TESTING.md``).

Monitored properties:

* **ε-agreement** (:class:`EpsilonAgreementMonitor`) — honest scalar outputs
  stay within ``epsilon`` of each other (``epsilon = 0`` gives the exact
  agreement required of the ACS baselines).
* **validity** (:class:`ValidityMonitor`) — honest outputs stay inside the
  honest-input hull, relaxed by ``rho`` (Definition II.1's ρ-relaxed min-max
  validity).
* **termination / totality** (:class:`TerminationMonitor`) — checked at run
  end: every honest node decided (termination), and never *some but not all*
  when termination is expected (totality).
* **per-protocol safety** (:class:`RbcSafetyMonitor`,
  :class:`BinaryBASafetyMonitor`) — the RBC and binary-BA predicates from
  the protocol layer, evaluated on every new decision.

Beyond pass/fail, the agreement, validity and termination monitors track
**margin channels**: how close the run came to violating the invariant
(smallest observed ε-agreement margin, closest distance to the validity-hull
boundary, latest termination slack).  Margins are derived purely from the
observer callback stream, so both engines report identical values for the
same schedule; the adversarial-schedule search (:mod:`repro.faults.search`)
uses them as its fitness signal and the campaign layer surfaces them in the
per-cell verdict JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.aggregation import round_to_epsilon
from repro.errors import InvariantViolation
from repro.protocols.binary_ba import ba_safety_violation
from repro.protocols.rbc import rbc_safety_violation
from repro.protocols.registry import (
    EPSILON_AGREEMENT,
    EXACT_AGREEMENT,
    HIERARCHICAL_AGREEMENT,
    agreement_kind,
    protocols_by_agreement,
)
from repro.sim.observers import SimObserver


def _scalar(output: Any) -> Optional[float]:
    """Unwrap an output to a float when possible (certificates and structured
    outputs expose ``.value``; non-scalar outputs are skipped)."""
    value = getattr(output, "value", output)
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


class InvariantMonitor(SimObserver):
    """Base class: names the monitor and raises uniform violations."""

    name = "invariant"

    def violation(self, detail: str, time: float = 0.0, node: int = -1) -> None:
        raise InvariantViolation(self.name, detail, time=time, node=node)

    def margin_channels(self) -> Dict[str, float]:
        """Raw margin values observed so far (channel name -> margin).

        A margin measures how far the run stayed from violating the invariant
        in the invariant's own units; it goes negative exactly when the
        monitor fires.  Monitors without a meaningful margin return ``{}``.
        """
        return {}

    def margin_ratios(self) -> Dict[str, float]:
        """Margins normalised to ``[-inf, 1]`` (1 = maximally safe, < 0 =
        violated) so channels with different units are comparable — this is
        the fitness signal of the adversarial-schedule search."""
        return {}


def _ratio(margin: float, cap: float) -> float:
    """Normalise a raw margin against its a-priori maximum ``cap``.

    With a degenerate cap (an exact-agreement monitor has ``epsilon = 0``)
    there is no gradient: any non-negative margin is fully safe (1.0) and a
    violation keeps its raw negative magnitude.
    """
    if cap > 0.0:
        return margin / cap
    return 1.0 if margin >= 0.0 else margin


def collect_margins(
    monitors: Sequence["InvariantMonitor"],
) -> Dict[str, Dict[str, float]]:
    """Merge every monitor's channels into ``{"margins": ..., "ratios": ...}``.

    Called by the campaign layer after a run (including violating runs —
    margins are recorded before a monitor raises, so a violation carries its
    negative margin).
    """
    margins: Dict[str, float] = {}
    ratios: Dict[str, float] = {}
    for monitor in monitors:
        margins.update(monitor.margin_channels())
        ratios.update(monitor.margin_ratios())
    return {"margins": margins, "ratios": ratios}


class EpsilonAgreementMonitor(InvariantMonitor):
    """Honest scalar outputs must stay within ``epsilon`` of each other.

    Margin channel ``epsilon_margin``: the smallest observed value of
    ``epsilon - spread``.  It starts at the a-priori maximum ``epsilon``
    (one decision has spread 0) and shrinks as outputs diverge; a violation
    drives it negative.
    """

    name = "epsilon-agreement"

    def __init__(self, epsilon: float, tolerance: float = 1e-9) -> None:
        self.epsilon = epsilon
        self.tolerance = tolerance
        self.min_margin = epsilon
        self._decided: Dict[int, float] = {}

    def margin_channels(self) -> Dict[str, float]:
        return {"epsilon_margin": self.min_margin}

    def margin_ratios(self) -> Dict[str, float]:
        return {"epsilon_margin": _ratio(self.min_margin, self.epsilon)}

    def on_decide(self, node_id: int, output: Any, time: float) -> None:
        value = _scalar(output)
        if value is None:
            return
        self._decided[node_id] = value
        spread = max(self._decided.values()) - min(self._decided.values())
        self.min_margin = min(self.min_margin, self.epsilon - spread)
        if spread > self.epsilon + self.tolerance:
            pairs = ", ".join(
                f"node {n} -> {v:.6g}" for n, v in sorted(self._decided.items())
            )
            self.violation(
                f"output spread {spread:.6g} exceeds epsilon {self.epsilon:.6g} "
                f"({pairs})",
                time=time,
                node=node_id,
            )


class ValidityMonitor(InvariantMonitor):
    """Honest outputs must lie in the honest-input hull, relaxed by ``rho``.

    Margin channel ``hull_distance``: the closest any honest output came to
    the hull boundary, ``min(value - low, high - value)``.  It starts at the
    hull's half-width (no value can sit farther from both edges) and a
    violation drives it negative.
    """

    name = "validity"

    def __init__(
        self,
        honest_inputs: Sequence[float],
        relaxation: float = 0.0,
        tolerance: float = 1e-9,
    ) -> None:
        if not honest_inputs:
            raise InvariantViolation(self.name, "no honest inputs to validate against")
        self.low = min(honest_inputs) - relaxation
        self.high = max(honest_inputs) + relaxation
        self.half_width = (self.high - self.low) / 2.0
        self.min_distance = self.half_width
        self.tolerance = tolerance

    def margin_channels(self) -> Dict[str, float]:
        return {"hull_distance": self.min_distance}

    def margin_ratios(self) -> Dict[str, float]:
        return {"hull_distance": _ratio(self.min_distance, self.half_width)}

    def on_decide(self, node_id: int, output: Any, time: float) -> None:
        value = _scalar(output)
        if value is None:
            return
        self.min_distance = min(
            self.min_distance, value - self.low, self.high - value
        )
        if not (self.low - self.tolerance <= value <= self.high + self.tolerance):
            self.violation(
                f"node {node_id} output {value:.6g} outside relaxed honest hull "
                f"[{self.low:.6g}, {self.high:.6g}]",
                time=time,
                node=node_id,
            )


class TerminationMonitor(InvariantMonitor):
    """End-of-run liveness: termination (all honest decided) and totality
    (never some-but-not-all) when the fault spec guarantees them.

    Margin channel ``termination_slack`` (only when termination is
    expected): the straggler ratio ``first_decision_time /
    last_decision_time``.  1 means all honest nodes decided together; a value
    near 0 means the last node decided many times later than the first — the
    run *almost* left a node behind; a stall reports slack 0.  (The engines
    stop as soon as every honest node decided, so an event-count slack would
    always be zero; decision-time straggle is the schedule-sensitive signal.)
    """

    name = "termination"

    def __init__(self, expect_termination: bool = True) -> None:
        self.expect_termination = expect_termination
        self._first_decide: Optional[float] = None
        self._last_decide: Optional[float] = None
        self._stalled: Optional[bool] = None

    def on_decide(self, node_id: int, output: Any, time: float) -> None:
        if self._first_decide is None:
            self._first_decide = time
        self._last_decide = time

    def margin_channels(self) -> Dict[str, float]:
        if not self.expect_termination:
            return {}
        if self._stalled:
            return {"termination_slack": 0.0}
        if self._first_decide is None or self._last_decide is None:
            # No honest decision observed (violation-aborted run): the
            # channel has nothing meaningful to report.
            return {}
        if self._last_decide <= 0.0:
            return {"termination_slack": 1.0}
        return {"termination_slack": self._first_decide / self._last_decide}

    def margin_ratios(self) -> Dict[str, float]:
        # The slack is already a fraction of the run.
        return self.margin_channels()

    def on_run_end(self, result: Any) -> None:
        missing = [n for n in result.honest_nodes if n not in result.outputs]
        self._stalled = bool(missing)
        if not self.expect_termination:
            return
        if missing:
            decided = [n for n in result.honest_nodes if n in result.outputs]
            kind = "totality" if decided else "termination"
            self.violation(
                f"{kind} violated: honest nodes {missing} never decided "
                f"({len(decided)}/{len(result.honest_nodes)} decided, "
                f"{result.events_processed} events processed)"
            )


class RbcSafetyMonitor(InvariantMonitor):
    """RBC agreement/validity, evaluated on every new honest delivery."""

    name = "rbc-safety"

    def __init__(self, broadcaster_value: Any = None) -> None:
        self.broadcaster_value = broadcaster_value
        self._delivered: Dict[int, Any] = {}

    def on_decide(self, node_id: int, output: Any, time: float) -> None:
        self._delivered[node_id] = output
        detail = rbc_safety_violation(self._delivered, self.broadcaster_value)
        if detail is not None:
            self.violation(detail, time=time, node=node_id)


class BinaryBASafetyMonitor(InvariantMonitor):
    """Binary-BA agreement + well-formed outputs, on every new decision."""

    name = "binary-ba-safety"

    def __init__(self) -> None:
        self._decided: Dict[int, Any] = {}

    def on_decide(self, node_id: int, output: Any, time: float) -> None:
        self._decided[node_id] = output
        detail = ba_safety_violation(self._decided)
        if detail is not None:
            self.violation(detail, time=time, node=node_id)


class CertificateStreamMonitor(InvariantMonitor):
    """DORA certificate-stream invariants for the multi-epoch oracle service.

    The service (:mod:`repro.oracle.service`) registers one instance as a
    per-epoch run observer *and* drives the epoch hooks directly:
    :meth:`begin_epoch` resets the per-epoch state with that epoch's honest
    inputs, ``on_decide`` (the regular observer hook) collects the honest
    certificates of the running epoch, and :meth:`check_certificate`
    validates the epoch's consumed certificate — it must sit on the epsilon
    rounding grid, carry at least ``t + 1`` distinct signers, and lie inside
    the epoch's relaxed honest-input hull (Theorem IV.3's bound, the same
    relaxation convention as :func:`build_monitors`).  Any breach raises
    :class:`~repro.errors.InvariantViolation` and aborts the service.
    """

    name = "certificate-stream"

    def __init__(self, params: Any, tolerance: float = 1e-9) -> None:
        self.params = params
        self.tolerance = tolerance
        self.epoch = -1
        self._low = 0.0
        self._high = 0.0
        self._decided: Dict[int, float] = {}

    def begin_epoch(self, epoch: int, honest_inputs: Sequence[float]) -> None:
        """Arm the monitor for one epoch's run."""
        if not honest_inputs:
            self.violation(f"epoch {epoch}: no honest inputs to validate against")
        input_range = max(honest_inputs) - min(honest_inputs)
        relaxation = max(self.params.rho0, input_range) + self.params.epsilon
        self.epoch = epoch
        self._low = min(honest_inputs) - relaxation
        self._high = max(honest_inputs) + relaxation
        self._decided = {}

    def on_decide(self, node_id: int, output: Any, time: float) -> None:
        value = _scalar(output)
        if value is None:
            return
        self._decided[node_id] = value
        spread = max(self._decided.values()) - min(self._decided.values())
        # Rounded honest values land on at most two *adjacent* multiples.
        if spread > self.params.epsilon + self.tolerance:
            self.violation(
                f"epoch {self.epoch}: rounded honest outputs spread "
                f"{spread:.6g} beyond epsilon {self.params.epsilon:.6g}",
                time=time,
                node=node_id,
            )

    def check_certificate(self, epoch: int, certificate: Any) -> None:
        """Validate one epoch's consumed certificate."""
        value = float(certificate.value)
        epsilon = self.params.epsilon
        if round_to_epsilon(value, epsilon) != value:
            self.violation(
                f"epoch {epoch}: certificate value {value!r} is not a "
                f"multiple of epsilon {epsilon!r}"
            )
        if certificate.signer_count < self.params.t + 1:
            self.violation(
                f"epoch {epoch}: certificate carries {certificate.signer_count} "
                f"signers, need t+1 = {self.params.t + 1}"
            )
        if not (self._low - self.tolerance <= value <= self._high + self.tolerance):
            self.violation(
                f"epoch {epoch}: certificate value {value:.6g} outside the "
                f"relaxed honest hull [{self._low:.6g}, {self._high:.6g}]"
            )


class ClusterLivenessMonitor(InvariantMonitor):
    """Liveness accounting for a live (chaos-injected) cluster run.

    Complements :class:`CertificateStreamMonitor` (which audits *what* gets
    certified) with *whether and when*: every planned epoch must end either
    **certified** within the per-epoch deadline or **explicitly skipped**
    with a recorded reason, and every node the chaos layer killed must be
    seen rejoining (or be accounted as still down at run end).  Silent
    outcomes — an epoch that just vanishes, a kill with no rejoin record —
    are exactly the failure modes a chaos soak exists to catch.

    The controller drives the hooks directly (there is no simulator run to
    observe): :meth:`begin_epoch` / :meth:`on_certified` / :meth:`on_skipped`
    per epoch, :meth:`on_kill` / :meth:`on_rejoin` per process fault, and
    :meth:`finalize` once the run ends.

    Margin channel ``certify_margin``: ``deadline - slowest certification``
    — how much per-epoch budget the worst epoch left unspent.
    """

    name = "cluster-liveness"

    def __init__(self, epochs: int, deadline: float) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        self.epochs = epochs
        self.deadline = deadline
        self.outcomes: Dict[int, str] = {}
        self.skip_reasons: Dict[int, str] = {}
        self.kills: List[int] = []
        self._rejoined: Dict[int, int] = {}
        self._began: Dict[int, float] = {}
        self._slowest = 0.0

    # -- epoch accounting ------------------------------------------------
    def begin_epoch(self, epoch: int, wall: float) -> None:
        self._began[epoch] = wall

    def on_certified(self, epoch: int, wall: float) -> None:
        self.outcomes[epoch] = "certified"
        began = self._began.get(epoch)
        if began is None:
            self.violation(f"epoch {epoch} certified without begin_epoch")
        took = wall - began
        self._slowest = max(self._slowest, took)
        if took > self.deadline:
            self.violation(
                f"epoch {epoch} certified after {took:.3f}s, beyond the "
                f"{self.deadline:.3f}s deadline",
                time=wall,
            )

    def on_skipped(self, epoch: int, reason: str) -> None:
        self.outcomes[epoch] = "skipped"
        self.skip_reasons[epoch] = reason

    # -- process-fault accounting ---------------------------------------
    def on_kill(self, node: int) -> None:
        self.kills.append(node)

    def on_rejoin(self, node: int) -> None:
        self._rejoined[node] = self._rejoined.get(node, 0) + 1

    def unrejoined(self) -> List[int]:
        """Killed nodes with fewer rejoins than kills, in kill order."""
        pending: Dict[int, int] = {}
        for node in self.kills:
            pending[node] = pending.get(node, 0) + 1
        return sorted(
            node
            for node, count in pending.items()
            if self._rejoined.get(node, 0) < count
        )

    # -- run-end checks --------------------------------------------------
    def finalize(self) -> None:
        """Raise on any unaccounted epoch (neither certified nor skipped)."""
        missing = [
            epoch for epoch in range(self.epochs) if epoch not in self.outcomes
        ]
        if missing:
            self.violation(
                f"epochs {missing} ended neither certified nor "
                "explicitly skipped"
            )

    def summary(self) -> Dict[str, Any]:
        """Non-raising JSON-safe accounting snapshot for the verdict."""
        return {
            "epochs_planned": self.epochs,
            "certified": sorted(
                e for e, o in self.outcomes.items() if o == "certified"
            ),
            "skipped": {
                str(e): self.skip_reasons.get(e, "")
                for e, o in sorted(self.outcomes.items())
                if o == "skipped"
            },
            "unaccounted": [
                e for e in range(self.epochs) if e not in self.outcomes
            ],
            "kills": list(self.kills),
            "unrejoined": self.unrejoined(),
            "slowest_certify_seconds": self._slowest,
        }

    def margin_channels(self) -> Dict[str, float]:
        return {"certify_margin": self.deadline - self._slowest}

    def margin_ratios(self) -> Dict[str, float]:
        return {
            "certify_margin": _ratio(self.deadline - self._slowest, self.deadline)
        }


class HierarchicalAgreementMonitor(InvariantMonitor):
    """Two-level epsilon agreement for sharded protocols.

    Checks two layers on every honest decision:

    - **per-group agreement** — members of one group must agree within
      ``epsilon`` (sharded Delphi fans the representative's value down
      verbatim, so in clean runs the per-group spread is 0);
    - **cross-group agreement** — the *end-to-end* property: all honest
      outputs across all groups must agree within ``epsilon``.

    Margin channels: ``epsilon_margin`` (the global, end-to-end margin —
    same channel name as the flat monitor so fuzz fitness and campaign
    tables compose) and ``group_epsilon_margin`` (the worst per-group
    margin).
    """

    name = "hierarchical-epsilon-agreement"

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        epsilon: float,
        tolerance: float = 1e-9,
    ) -> None:
        self.epsilon = epsilon
        self.tolerance = tolerance
        self.groups = [tuple(group) for group in groups]
        self._group_of = {
            node: index
            for index, group in enumerate(self.groups)
            for node in group
        }
        self._decided: Dict[int, float] = {}
        self._group_decided: Dict[int, Dict[int, float]] = {}
        self.min_margin = epsilon
        self.min_group_margin = epsilon

    def margin_channels(self) -> Dict[str, float]:
        return {
            "epsilon_margin": self.min_margin,
            "group_epsilon_margin": self.min_group_margin,
        }

    def margin_ratios(self) -> Dict[str, float]:
        return {
            "epsilon_margin": _ratio(self.min_margin, self.epsilon),
            "group_epsilon_margin": _ratio(self.min_group_margin, self.epsilon),
        }

    def on_decide(self, node_id: int, output: Any, time: float) -> None:
        value = _scalar(output)
        if value is None:
            return
        group = self._group_of.get(node_id)
        if group is None:
            self.violation(
                f"node {node_id} decided but belongs to no group",
                time=time,
                node=node_id,
            )
        decided_in_group = self._group_decided.setdefault(group, {})
        decided_in_group[node_id] = value
        group_values = decided_in_group.values()
        group_spread = max(group_values) - min(group_values)
        self.min_group_margin = min(
            self.min_group_margin, self.epsilon - group_spread
        )
        if group_spread > self.epsilon + self.tolerance:
            pairs = ", ".join(
                f"node {n} -> {v:.6g}" for n, v in sorted(decided_in_group.items())
            )
            self.violation(
                f"group {group} spread {group_spread:.6g} exceeds epsilon "
                f"{self.epsilon:.6g} ({pairs})",
                time=time,
                node=node_id,
            )
        self._decided[node_id] = value
        spread = max(self._decided.values()) - min(self._decided.values())
        self.min_margin = min(self.min_margin, self.epsilon - spread)
        if spread > self.epsilon + self.tolerance:
            lows = min(self._decided, key=self._decided.get)
            highs = max(self._decided, key=self._decided.get)
            self.violation(
                f"cross-group spread {spread:.6g} exceeds epsilon "
                f"{self.epsilon:.6g} (node {lows} [group "
                f"{self._group_of.get(lows)}] -> {self._decided[lows]:.6g}, "
                f"node {highs} [group {self._group_of.get(highs)}] -> "
                f"{self._decided[highs]:.6g})",
                time=time,
                node=node_id,
            )


#: Protocols whose agreement property is ε-agreement on scalars (from the
#: protocol-runner registry; kept as module constants for compatibility).
APPROXIMATE_PROTOCOLS = protocols_by_agreement(EPSILON_AGREEMENT)

#: Protocols whose agreement property is exact (common-subset medians).
EXACT_PROTOCOLS = protocols_by_agreement(EXACT_AGREEMENT)


def _approximate_relaxation(
    scenario: Any, honest_inputs: Sequence[float], levels: int = 1
) -> float:
    """Theorem IV.3's validity bound, composed over ``levels`` rounds."""
    input_range = max(honest_inputs) - min(honest_inputs) if honest_inputs else 0.0
    rho0 = scenario.rho0 if scenario.rho0 is not None else scenario.epsilon
    return float(
        scenario.extras.get(
            "validity_relaxation",
            levels * (max(rho0, input_range) + scenario.epsilon),
        )
    )


def build_monitors(
    scenario: Any,
    honest_inputs: Sequence[float],
    expect_termination: bool = True,
) -> List[InvariantMonitor]:
    """The monitor set for one experiment cell.

    ``honest_inputs`` are the inputs of the nodes that stay honest for the
    whole run.  The protocol's agreement classification comes from the
    protocol-runner registry.  The validity relaxation for the approximate
    protocols follows the test-suite convention ``max(rho0, honest input
    range) + epsilon`` (Theorem IV.3's bound with Byzantine value
    injection); hierarchical protocols compose that bound over two levels;
    cells can override it through ``extras['validity_relaxation']``.
    """
    monitors: List[InvariantMonitor] = []
    protocol = scenario.protocol
    kind = agreement_kind(protocol)
    if kind == EPSILON_AGREEMENT:
        monitors.append(EpsilonAgreementMonitor(scenario.epsilon))
        monitors.append(
            ValidityMonitor(
                honest_inputs,
                relaxation=_approximate_relaxation(scenario, honest_inputs),
            )
        )
    elif kind == HIERARCHICAL_AGREEMENT:
        from repro.protocols.sharded_delphi import sharded_topology_of

        topology = sharded_topology_of(scenario)
        monitors.append(
            HierarchicalAgreementMonitor(topology.groups, scenario.epsilon)
        )
        monitors.append(
            ValidityMonitor(
                honest_inputs,
                relaxation=_approximate_relaxation(
                    scenario, honest_inputs, levels=2
                ),
            )
        )
    elif kind == EXACT_AGREEMENT:
        monitors.append(EpsilonAgreementMonitor(0.0))
        # ACS medians: with at most t Byzantine values in an agreed set of
        # >= 2t+1, the median cannot leave the honest-input hull.
        monitors.append(ValidityMonitor(honest_inputs, relaxation=0.0))
    monitors.append(TerminationMonitor(expect_termination=expect_termination))
    return monitors
