"""Declarative, parallel experiment harness for the Delphi reproduction.

The paper's evaluation is a grid of scenarios — protocol x n x network
model x adversary x workload — and this subsystem expresses that grid as
data and executes it efficiently:

``spec``
    :class:`ScenarioSpec` (one cell as plain data, content-hashable) and
    :class:`SweepSpec` (a base scenario expanded along axes/variants into
    the full grid, with deterministic per-cell seeding).

``cells``
    Pure cell functions mapping a spec to a JSON-safe metrics dict: run a
    protocol through the simulator, or analyse a workload distribution
    (Figs. 4/5).

``executor``
    :class:`SweepExecutor`: fans cells out across worker processes
    (``concurrent.futures.ProcessPoolExecutor``), caches results on disk
    keyed by spec hash (re-runs skip computed cells), reports progress,
    and returns results in deterministic grid order.

``artifacts``
    :class:`CellResult`/:class:`SweepResult` plus JSON/CSV writers and the
    bridge into :class:`repro.testbed.metrics.MetricsCollector` used by the
    benchmark suite's report tables.

``presets``
    The paper's figures/tables (Fig. 4-7, ablations, smoke/fault grids) as
    named, scale-aware sweeps.

``cli``
    The ``python -m repro`` command line (``sweep`` / ``run`` /
    ``list-scenarios``).

Example
-------
Run Fig. 6a's grid in parallel with caching, then render its table::

    from repro.experiments import SweepExecutor, preset

    executor = SweepExecutor(cache_dir=".repro-cache")
    result = executor.run(preset("fig6a"))
    print(result.to_collector().render_table("runtime_seconds"))

Or define a custom grid inline::

    from repro.experiments import ScenarioSpec, SweepSpec, SweepExecutor

    sweep = SweepSpec(
        name="my-sweep",
        base=ScenarioSpec(epsilon=1.0, delta_max=16.0, testbed="aws"),
        axes={"protocol": ["delphi", "fin"], "n": [7, 13, 19]},
    )
    result = SweepExecutor().run(sweep)
    result.write_csv("out/my-sweep.csv")
"""

from repro.experiments.artifacts import CellResult, SweepResult
from repro.experiments.cells import run_cell
from repro.experiments.executor import SweepExecutor, execute_cell
from repro.experiments.presets import PRESETS, list_presets, preset
from repro.experiments.spec import ScenarioSpec, SweepSpec

__all__ = [
    "CellResult",
    "PRESETS",
    "ScenarioSpec",
    "SweepExecutor",
    "SweepResult",
    "SweepSpec",
    "execute_cell",
    "list_presets",
    "preset",
    "run_cell",
]
