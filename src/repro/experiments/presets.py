"""Named experiment presets: the paper's figures/tables as declarative sweeps.

Each preset is a factory ``(scale) -> SweepSpec`` registered in
:data:`PRESETS`.  ``scale`` is ``"quick"`` (small n, capped BinAA rounds —
minutes of pure Python) or ``"full"`` (the paper's system sizes — hours).
The benchmark scripts under ``benchmarks/`` and the ``python -m repro`` CLI
both build their grids from here, so a figure's scenario set is defined in
exactly one place.

Example
-------
>>> from repro.experiments.presets import preset
>>> sweep = preset("fig6a", scale="quick")
>>> len(sweep.cells())
12
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.distributions.extreme_value import delta_bound
from repro.distributions.thin_tailed import NormalInputs
from repro.errors import ConfigurationError

from repro.experiments.spec import ScenarioSpec, SweepSpec

#: Paper configuration for the oracle-network (AWS) application.
ORACLE_EPSILON = 2.0
ORACLE_RHO0 = 10.0
ORACLE_DELTA_MAX = 2000.0

#: Paper configuration for the drone (CPS) application.
DRONE_EPSILON = 0.5
DRONE_RHO0 = 0.5
DRONE_DELTA_MAX = 50.0

#: Average-case and high-volatility Bitcoin input ranges (dollars).
ORACLE_DELTA_AVERAGE = 20.0
ORACLE_DELTA_WORST = 180.0
BITCOIN_PRICE = 40_000.0

#: Average-case and worst-case drone input ranges (metres).
DRONE_DELTA_AVERAGE = 5.0
DRONE_DELTA_WORST = 50.0
DRONE_LOCATION = 120.0

SCALES = ("quick", "full")


def _check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ConfigurationError(f"unknown scale {scale!r} (expected one of {SCALES})")
    return scale


def aws_node_counts(scale: str = "quick") -> List[int]:
    """System sizes for the AWS (oracle) experiments."""
    return [16, 64, 112, 160] if _check_scale(scale) == "full" else [7, 13, 19]


def cps_node_counts(scale: str = "quick") -> List[int]:
    """System sizes for the CPS (drone) experiments."""
    return [43, 85, 127, 169] if _check_scale(scale) == "full" else [7, 13, 19]


def max_rounds(scale: str = "quick") -> int:
    """Cap on BinAA iterations at quick scale (effectively uncapped at full)."""
    return 10_000 if _check_scale(scale) == "full" else 6


# ----------------------------------------------------------------------
# Presets.


def smoke(scale: str = "quick") -> SweepSpec:
    """A fast 12-cell protocol x n grid on the LAN model (CI smoke grid)."""
    _check_scale(scale)
    return SweepSpec(
        name="smoke",
        description="12-cell protocol x n smoke grid on the LAN network model",
        base=ScenarioSpec(
            epsilon=1.0, delta_max=8.0, max_rounds=5, testbed="lan", delta=3.0, centre=100.0
        ),
        axes={
            "protocol": ["delphi", "abraham", "fin", "hbbft"],
            "n": [4, 5, 7],
        },
    )


def fig6a(scale: str = "quick") -> SweepSpec:
    """Fig. 6a: runtime vs n on the AWS model (Delphi at two input ranges
    vs the Abraham et al. and FIN baselines)."""
    return SweepSpec(
        name="fig6a",
        description="Fig. 6a — protocol runtime vs system size on the AWS testbed",
        base=ScenarioSpec(
            testbed="aws",
            epsilon=ORACLE_EPSILON,
            rho0=ORACLE_RHO0,
            delta_max=ORACLE_DELTA_MAX,
            max_rounds=max_rounds(scale),
            centre=BITCOIN_PRICE,
            delta=ORACLE_DELTA_AVERAGE,
            seed=1,
        ),
        axes={"n": aws_node_counts(scale)},
        variants=[
            {"name": "delphi d=20", "protocol": "delphi", "delta": ORACLE_DELTA_AVERAGE},
            {"name": "delphi d=180", "protocol": "delphi", "delta": ORACLE_DELTA_WORST},
            {"name": "abraham", "protocol": "abraham"},
            {"name": "fin", "protocol": "fin"},
        ],
        derive_seeds=False,
    )


def fig6b(scale: str = "quick") -> SweepSpec:
    """Fig. 6b: bandwidth vs n on the AWS model (``rho0 = epsilon = 2$``)."""
    sweep = fig6a(scale)
    return SweepSpec(
        name="fig6b",
        description="Fig. 6b — network bandwidth vs system size on the AWS testbed",
        base=sweep.base.replace(rho0=ORACLE_EPSILON, seed=2),
        axes=sweep.axes,
        variants=sweep.variants,
        derive_seeds=False,
    )


def fig6c(scale: str = "quick") -> SweepSpec:
    """Fig. 6c: runtime vs n on the CPS (Raspberry-Pi) model with the drone
    configuration."""
    return SweepSpec(
        name="fig6c",
        description="Fig. 6c — protocol runtime vs system size on the CPS testbed",
        base=ScenarioSpec(
            testbed="cps",
            epsilon=DRONE_EPSILON,
            rho0=DRONE_RHO0,
            delta_max=DRONE_DELTA_MAX,
            max_rounds=max_rounds(scale),
            centre=DRONE_LOCATION,
            delta=DRONE_DELTA_AVERAGE,
            seed=3,
        ),
        axes={"n": cps_node_counts(scale)},
        variants=[
            {"name": "delphi d=5m", "protocol": "delphi", "delta": DRONE_DELTA_AVERAGE},
            {"name": "delphi d=50m", "protocol": "delphi", "delta": DRONE_DELTA_WORST},
            {"name": "abraham", "protocol": "abraham"},
            {"name": "fin", "protocol": "fin"},
        ],
        derive_seeds=False,
    )


def _fig7(testbed: str, scale: str) -> SweepSpec:
    n = 16 if _check_scale(scale) == "full" else 7
    epsilon = 1.0
    cells: List[ScenarioSpec] = []
    for agreement_ratio in (4, 16, 64):
        for range_ratio in (1, 4, 16):
            delta_max = agreement_ratio * epsilon
            delta = min(range_ratio * epsilon, 0.9 * delta_max)
            cells.append(
                ScenarioSpec(
                    name=f"A={agreement_ratio} R={range_ratio}",
                    protocol="delphi",
                    n=n,
                    epsilon=epsilon,
                    rho0=epsilon,
                    delta_max=delta_max,
                    max_rounds=8,
                    testbed=testbed,
                    delta=delta,
                    centre=1000.0,
                    seed=7,
                    extras={"agreement_ratio": agreement_ratio, "range_ratio": range_ratio},
                )
            )
    return SweepSpec(
        name=f"fig7-{testbed}",
        description=f"Fig. 7 — Delphi runtime heatmap (agreement x range ratio) on {testbed}",
        explicit=cells,
    )


def fig7_aws(scale: str = "quick") -> SweepSpec:
    """Fig. 7 (AWS half): agreement-ratio x range-ratio runtime heatmap."""
    return _fig7("aws", scale)


def fig7_cps(scale: str = "quick") -> SweepSpec:
    """Fig. 7 (CPS half): agreement-ratio x range-ratio runtime heatmap."""
    return _fig7("cps", scale)


def fig4_bitcoin_range(scale: str = "quick") -> SweepSpec:
    """Fig. 4: the per-minute Bitcoin inter-exchange range histogram."""
    minutes = 2 * 7 * 24 * 60 if _check_scale(scale) == "full" else 3 * 24 * 60
    cell = ScenarioSpec(
        name="bitcoin-range",
        kind="bitcoin_range",
        seed=4,
        extras={"minutes": minutes, "num_sources": 10, "bins": 30},
    )
    return SweepSpec(
        name="fig4",
        description="Fig. 4 — Bitcoin inter-exchange price-range histogram and EVT fit",
        explicit=[cell],
    )


def fig5_drone_iou(scale: str = "quick") -> SweepSpec:
    """Fig. 5: the drone object-detection IoU histogram."""
    detections = 80_000 if _check_scale(scale) == "full" else 12_000
    cell = ScenarioSpec(
        name="drone-iou",
        kind="drone_iou",
        seed=5,
        extras={"detections": detections, "bins": 25, "num_drones": 2000},
    )
    return SweepSpec(
        name="fig5",
        description="Fig. 5 — drone object-detection IoU histogram and thin-tail fit",
        explicit=[cell],
    )


#: Ablation constants (Section III design decisions at n = 7).
ABLATION_N = 7
ABLATION_EPSILON = 1.0
ABLATION_DELTA_MAX = 64.0
ABLATION_CENTRE = 500.0
ABLATION_DELTA_AVERAGE = 3.0


def ablation_levels(scale: str = "quick") -> SweepSpec:
    """Ablation: multi-level checkpoints vs one worst-case level."""
    return SweepSpec(
        name="ablation-levels",
        description="Ablation — multi-level checkpoints vs a single worst-case level",
        base=ScenarioSpec(
            protocol="delphi",
            n=ABLATION_N,
            epsilon=ABLATION_EPSILON,
            delta_max=ABLATION_DELTA_MAX,
            max_rounds=max_rounds(scale),
            testbed="ideal",
            delta=ABLATION_DELTA_AVERAGE,
            centre=ABLATION_CENTRE,
        ),
        variants=[
            {"name": "multi-level", "rho0": ABLATION_EPSILON},
            {"name": "single-level", "rho0": ABLATION_DELTA_MAX},
        ],
        derive_seeds=False,
    )


def ablation_bundling(scale: str = "quick") -> SweepSpec:
    """Ablation: traffic must track active checkpoints (delta/rho0), not the
    checkpoint space (Delta/rho0)."""
    return SweepSpec(
        name="ablation-bundling",
        description="Ablation — bundled traffic scales with the active range delta",
        base=ScenarioSpec(
            protocol="delphi",
            n=ABLATION_N,
            epsilon=ABLATION_EPSILON,
            rho0=ABLATION_EPSILON,
            delta_max=ABLATION_DELTA_MAX,
            max_rounds=max_rounds(scale),
            testbed="ideal",
            centre=ABLATION_CENTRE,
        ),
        variants=[
            {"name": f"delta={delta:g}", "delta": delta} for delta in (2.0, 8.0, 32.0)
        ],
        derive_seeds=False,
    )


def ablation_delta_bound(scale: str = "quick") -> SweepSpec:
    """Ablation: EVT-derived ``Delta`` vs a loose domain bound."""
    noise = NormalInputs(sigma=0.5, true_value=ABLATION_CENTRE, seed=8)
    derived_delta = max(2.0, delta_bound(ABLATION_N, security_bits=20, distribution=noise))
    return SweepSpec(
        name="ablation-delta-bound",
        description="Ablation — EVT-derived Delta vs a loose domain bound",
        base=ScenarioSpec(
            protocol="delphi",
            n=ABLATION_N,
            epsilon=ABLATION_EPSILON,
            rho0=ABLATION_EPSILON,
            max_rounds=max_rounds(scale),
            testbed="ideal",
            workload="normal",
            centre=ABLATION_CENTRE,
            seed=8,
            extras={"sigma": 0.5},
        ),
        variants=[
            {"name": "derived", "delta_max": derived_delta},
            {"name": "loose", "delta_max": 512.0},
        ],
        derive_seeds=False,
    )


def faults(scale: str = "quick") -> SweepSpec:
    """Fault-injection grid: Delphi under every adversary strategy."""
    _check_scale(scale)
    return SweepSpec(
        name="faults",
        description="Delphi under crash/delay/equivocate/random-bit/spam adversaries",
        base=ScenarioSpec(
            protocol="delphi",
            epsilon=1.0,
            delta_max=8.0,
            max_rounds=5,
            testbed="lan",
            delta=3.0,
            centre=100.0,
            num_byzantine=1,
        ),
        axes={
            "adversary": ["crash", "delay", "equivocate", "random-bit", "spam"],
            "n": [4, 7],
        },
    )


PresetFactory = Callable[[str], SweepSpec]

#: Registry of named presets: name -> (factory, short description).
PRESETS: Dict[str, Tuple[PresetFactory, str]] = {
    "smoke": (smoke, "12-cell protocol x n smoke grid (LAN model, fast)"),
    "fig4": (fig4_bitcoin_range, "Fig. 4 Bitcoin range histogram + EVT fit"),
    "fig5": (fig5_drone_iou, "Fig. 5 drone IoU histogram + thin-tail fit"),
    "fig6a": (fig6a, "Fig. 6a runtime vs n (AWS testbed)"),
    "fig6b": (fig6b, "Fig. 6b bandwidth vs n (AWS testbed)"),
    "fig6c": (fig6c, "Fig. 6c runtime vs n (CPS testbed)"),
    "fig7-aws": (fig7_aws, "Fig. 7 heatmap, AWS half"),
    "fig7-cps": (fig7_cps, "Fig. 7 heatmap, CPS half"),
    "ablation-levels": (ablation_levels, "multi-level vs single-level checkpoints"),
    "ablation-bundling": (ablation_bundling, "traffic vs active checkpoint range"),
    "ablation-delta-bound": (ablation_delta_bound, "EVT Delta vs loose domain bound"),
    "faults": (faults, "Delphi under five Byzantine strategies"),
}


def preset(name: str, scale: str = "quick") -> SweepSpec:
    """Build one named preset sweep at the given scale."""
    try:
        factory, _description = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigurationError(f"unknown preset {name!r} (known: {known})")
    return factory(scale)


def list_presets(scale: str = "quick") -> List[Tuple[str, str, int]]:
    """(name, description, cell count) for every registered preset."""
    return [
        (name, description, len(factory(scale).cells()))
        for name, (factory, description) in sorted(PRESETS.items())
    ]
