"""Cell functions: turn one :class:`ScenarioSpec` into a metrics dict.

Every scenario *kind* maps to one module-level function (so cells pickle
cleanly into worker processes).  Cell functions are **pure**: all randomness
derives from ``spec.seed``, which is what lets the executor cache results by
spec hash and guarantees parallel == serial output.

Metrics dicts are JSON-safe (plain floats/ints/strings/lists) because they
are written verbatim into the on-disk result cache and the JSON/CSV
artifacts.

Example
-------
>>> from repro.experiments import ScenarioSpec
>>> from repro.experiments.cells import run_cell
>>> metrics = run_cell(ScenarioSpec(protocol="delphi", n=5, delta_max=8.0))
>>> metrics["all_decided"]
True
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.adversary.base import AdversaryStrategy
from repro.adversary.strategies import (
    CrashStrategy,
    DelayedHonestStrategy,
    EquivocatingStrategy,
    RandomBitStrategy,
    SpamStrategy,
)
from repro.analysis.range_analysis import analyse_ranges, validity_margin
from repro.distributions.fitting import fit_distributions, histogram
from repro.distributions.thin_tailed import NormalInputs
from repro.errors import ConfigurationError
from repro.faults.spec import fault_spec_of
from repro.net.latency import UniformLatency
from repro.net.network import AsynchronousNetwork, DeliveryPolicy
from repro.protocols.registry import RunRequest, get_protocol
from repro.runner import ProtocolRunResult
from repro.sim.runtime import ComputeModel, SimulationConfig
from repro.testbed.aws import AwsTestbed
from repro.testbed.cps import CpsTestbed
from repro.workloads.bitcoin import BitcoinPriceFeed
from repro.workloads.drone import DroneLocalisationWorkload
from repro.workloads.sensors import SensorGridWorkload

from repro.experiments.spec import ScenarioSpec

# ----------------------------------------------------------------------
# Building blocks: inputs, network/compute, adversary.


def spread_inputs(n: int, centre: float, delta: float) -> List[float]:
    """n inputs spread deterministically across a range ``delta`` — the
    canonical input layout of the paper's protocol sweeps (shared with the
    benchmark suite via ``bench_common.spread_inputs``)."""
    if n == 1:
        return [centre]
    return [centre - delta / 2.0 + delta * index / (n - 1) for index in range(n)]


def lan_network(
    n: int, seed: int = 0, adversarial_delay: float = 0.0
) -> AsynchronousNetwork:
    """A small asynchronous network with jittered latency and reordering —
    the test suite's default environment (shared with ``tests/helpers.py``)."""
    return AsynchronousNetwork(
        num_nodes=n,
        latency=UniformLatency(low=0.001, high=0.01, seed=seed),
        policy=DeliveryPolicy(max_extra_delay=adversarial_delay, reorder=True, seed=seed),
    )


def build_inputs(spec: ScenarioSpec) -> List[float]:
    """Honest input values for a protocol cell, from the spec's workload."""
    n = spec.n
    if spec.workload == "spread":
        return spread_inputs(n, spec.centre, spec.delta)
    if spec.workload == "bitcoin":
        return BitcoinPriceFeed(seed=spec.seed).node_inputs(n)
    if spec.workload == "drone":
        xs, _ys = DroneLocalisationWorkload(seed=spec.seed).node_inputs(n)
        return xs
    if spec.workload == "sensors":
        return SensorGridWorkload(true_value=spec.centre, seed=spec.seed).node_inputs(n)
    if spec.workload == "normal":
        sigma = float(spec.extras.get("sigma", 0.5))
        return NormalInputs(
            sigma=sigma, true_value=spec.centre, seed=spec.seed
        ).sample_inputs(n)
    raise ConfigurationError(f"unknown workload {spec.workload!r}")


def build_network(spec: ScenarioSpec) -> Tuple[Optional[AsynchronousNetwork], Optional[ComputeModel]]:
    """The (network, compute) pair for the spec's testbed.

    When the spec embeds a fault plan (``extras['faults']`` with partition/
    delay/loss windows, see :mod:`repro.faults.spec`), the plan is installed
    on the network's delivery policy.
    """
    if spec.testbed == "aws":
        testbed = AwsTestbed(
            num_nodes=spec.n, seed=spec.seed, adversarial_delay=spec.adversarial_delay
        )
        network, compute = testbed.network(), testbed.compute()
    elif spec.testbed == "cps":
        testbed = CpsTestbed(
            num_nodes=spec.n, seed=spec.seed, adversarial_delay=spec.adversarial_delay
        )
        network, compute = testbed.network(), testbed.compute()
    elif spec.testbed == "lan":
        network, compute = (
            lan_network(spec.n, seed=spec.seed, adversarial_delay=spec.adversarial_delay),
            None,
        )
    elif spec.testbed == "ideal":
        network, compute = None, None
    else:
        raise ConfigurationError(f"unknown testbed {spec.testbed!r}")

    fault_spec = fault_spec_of(spec)
    if fault_spec is not None and fault_spec.has_network_faults:
        if network is None:
            raise ConfigurationError(
                "network fault windows require a concrete testbed "
                "(aws/cps/lan), not 'ideal'"
            )
        network.policy.install_faults(fault_spec.network_plan())
    return network, compute


def _make_strategy(spec: ScenarioSpec, node_id: int) -> AdversaryStrategy:
    if spec.adversary == "crash":
        return CrashStrategy()
    if spec.adversary == "delay":
        return DelayedHonestStrategy(hold_back=int(spec.extras.get("hold_back", 3)))
    if spec.adversary == "equivocate":
        return EquivocatingStrategy()
    if spec.adversary == "random-bit":
        return RandomBitStrategy(seed=spec.seed + node_id)
    if spec.adversary == "spam":
        return SpamStrategy(copies=int(spec.extras.get("spam_copies", 2)))
    raise ConfigurationError(f"unknown adversary {spec.adversary!r}")


def build_adversary(spec: ScenarioSpec) -> Optional[Dict[int, AdversaryStrategy]]:
    """Per-node Byzantine strategies.

    A fault spec in ``extras['faults']`` takes precedence: its corruption
    groups (with strategy mix and activation schedule) are built through the
    fault-strategy registry.  Otherwise the plain ``adversary`` /
    ``num_byzantine`` fields corrupt the highest node ids.
    """
    fault_spec = fault_spec_of(spec)
    if fault_spec is not None and fault_spec.corruptions:
        return fault_spec.build_strategies(spec.n, seed=spec.seed, scenario=spec)
    if spec.adversary == "none" or spec.num_byzantine == 0:
        return None
    corrupted = range(spec.n - spec.num_byzantine, spec.n)
    return {node_id: _make_strategy(spec, node_id) for node_id in corrupted}


# ----------------------------------------------------------------------
# Protocol cell.


def _run_named_protocol(
    spec: ScenarioSpec,
    inputs: List[float],
    config: Optional[SimulationConfig] = None,
    observers: Optional[List[Any]] = None,
    extra_byzantine: Optional[Dict[int, AdversaryStrategy]] = None,
) -> Tuple[ProtocolRunResult, Dict[str, Any]]:
    network, compute = build_network(spec)
    byzantine = build_adversary(spec)
    if extra_byzantine:
        byzantine = {**(byzantine or {}), **extra_byzantine}
    runner = get_protocol(spec.protocol)
    derived: Dict[str, Any] = runner.derived(spec) if runner.derived else {}
    result = runner.run(
        RunRequest(
            spec=spec,
            inputs=inputs,
            network=network,
            byzantine=byzantine,
            compute=compute,
            config=config,
            observers=observers,
        )
    )
    return result, derived


def run_protocol_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """Run one protocol instance end to end and summarise it as metrics."""
    inputs = build_inputs(spec)
    result, derived = _run_named_protocol(spec, inputs)
    honest_inputs = [inputs[node_id] for node_id in result.honest_nodes] or inputs
    metrics: Dict[str, Any] = {
        "protocol": spec.protocol,
        "n": spec.n,
        "runtime_seconds": result.runtime_seconds,
        "megabytes": result.total_megabytes,
        "message_count": result.message_count,
        "events_processed": result.events_processed,
        "output_spread": result.output_spread,
        "validity_margin": validity_margin(result.output_values, honest_inputs),
        "all_decided": result.all_decided,
        "decided_count": len(result.outputs),
        "num_byzantine": len(result.byzantine_nodes),
        "input_range": max(honest_inputs) - min(honest_inputs),
        "output_values": list(result.output_values),
    }
    metrics.update(derived)
    return metrics


# ----------------------------------------------------------------------
# Workload-analysis cells (Figs. 4 and 5).


def run_bitcoin_range_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """Fig. 4 cell: per-minute Bitcoin inter-exchange range statistics.

    ``extras``: ``minutes`` (observation window), ``num_sources`` (exchanges
    queried per minute), ``thresholds``, ``security_bits``, ``bins``,
    ``candidates`` (distribution families to fit).
    """
    extras = spec.extras
    minutes = int(extras.get("minutes", 3 * 24 * 60))
    num_sources = int(extras.get("num_sources", 10))
    thresholds = tuple(float(t) for t in extras.get("thresholds", (30.0, 100.0, 300.0)))
    candidates = tuple(extras.get("candidates", ("frechet", "gumbel", "gamma", "normal")))
    feed = BitcoinPriceFeed(seed=spec.seed)
    ranges = feed.observed_ranges(num_nodes=num_sources, minutes=minutes)
    stats = analyse_ranges(
        ranges, thresholds=thresholds, security_bits=int(extras.get("security_bits", 30))
    )
    centres, counts = histogram(ranges, bins=int(extras.get("bins", 30)))
    fits = fit_distributions(ranges, candidates=candidates)
    return {
        "samples": len(ranges),
        "mean": stats.mean,
        "median": stats.median,
        "p99": stats.p99,
        "max": stats.maximum,
        "fraction_below": [[t, stats.fraction_below[t]] for t in thresholds],
        "recommended_delta": stats.recommended_delta,
        "fits": [{"name": fit.name, "ks": fit.ks_statistic} for fit in fits],
        "histogram": {"centres": centres, "counts": counts},
    }


def run_drone_iou_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """Fig. 5 cell: object-detection IoU distribution for the drone workload.

    ``extras``: ``detections``, ``bins``, ``candidates``, ``num_drones``
    (for the implied location-error statistic).
    """
    extras = spec.extras
    detections = int(extras.get("detections", 12_000))
    candidates = tuple(extras.get("candidates", ("gamma", "normal", "frechet")))
    workload = DroneLocalisationWorkload(seed=spec.seed)
    ious = workload.sample_ious(detections)
    values = np.asarray(ious)
    centres, counts = histogram(ious, bins=int(extras.get("bins", 25)))
    fits = fit_distributions(ious, candidates=candidates)
    errors = workload.error_distances(num_drones=int(extras.get("num_drones", 2000)))
    return {
        "samples": detections,
        "mean_iou": float(values.mean()),
        "fraction_below_06": float(np.mean(values < 0.6)),
        "fits": [{"name": fit.name, "ks": fit.ks_statistic} for fit in fits],
        "histogram": {"centres": centres, "counts": counts},
        "mean_error_m": float(np.mean(errors)),
    }


#: Registry mapping scenario kinds to their cell functions.
CELL_KINDS: Dict[str, Callable[[ScenarioSpec], Dict[str, Any]]] = {
    "protocol": run_protocol_cell,
    "bitcoin_range": run_bitcoin_range_cell,
    "drone_iou": run_drone_iou_cell,
}


def run_cell(spec: ScenarioSpec) -> Dict[str, Any]:
    """Dispatch one spec to its registered cell function."""
    try:
        cell = CELL_KINDS[spec.kind]
    except KeyError:
        raise ConfigurationError(f"no cell function registered for kind {spec.kind!r}")
    return cell(spec)
