"""Parallel sweep execution with deterministic seeding and result caching.

:class:`SweepExecutor` fans a sweep's cells out across worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`.  Because every cell is a
pure function of its :class:`~repro.experiments.spec.ScenarioSpec` (all
randomness derives from ``spec.seed``), parallel and serial execution
produce bit-identical metrics, and the spec's content hash can key an
on-disk result cache: re-running a sweep skips every already-computed cell.

Example
-------
>>> from repro.experiments import ScenarioSpec, SweepSpec, SweepExecutor
>>> sweep = SweepSpec(
...     name="demo",
...     base=ScenarioSpec(epsilon=1.0, delta_max=8.0, max_rounds=4),
...     axes={"n": [4, 5], "protocol": ["delphi", "fin"]},
... )
>>> executor = SweepExecutor(cache_dir=".repro-cache", progress=None)
>>> result = executor.run(sweep)          # doctest: +SKIP
>>> executor.run(sweep).cached_count      # doctest: +SKIP
4
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

from repro.experiments.artifacts import CellResult, SweepResult
from repro.experiments.cells import run_cell
from repro.experiments.spec import ScenarioSpec, SweepSpec

#: Environment variable overriding the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment variable overriding the per-submission chunk size.
CHUNK_ENV = "REPRO_SWEEP_CHUNK"

#: Cap on automatically chosen chunk sizes (keeps progress responsive and
#: stragglers bounded even for very large grids).
MAX_AUTO_CHUNK = 16

ProgressFn = Callable[[str], None]


def _default_progress(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


def _jsonify(value: Any) -> Any:
    """Normalise metrics through a JSON round-trip.

    Guarantees fresh and cache-loaded results are structurally identical
    (tuples become lists, numpy scalars become floats) so equality checks
    and artifact writers never see two shapes of the same result.
    """
    return json.loads(json.dumps(value, default=float))


def execute_cell(spec: ScenarioSpec) -> Tuple[str, Dict[str, Any], float]:
    """Worker entry point: run one cell, return (hash, metrics, seconds).

    Module-level so it pickles into :class:`ProcessPoolExecutor` workers
    under every start method (fork and spawn).
    """
    started = time.perf_counter()
    metrics = _jsonify(run_cell(spec))
    return spec.spec_hash(), metrics, time.perf_counter() - started


def execute_cells(
    specs: Sequence[ScenarioSpec],
) -> List[Tuple[str, Dict[str, Any], float]]:
    """Worker entry point for a chunk of cells (one IPC round-trip).

    Grids of sub-second cells used to pay one process-pool submission —
    pickling, queueing, result transfer — per cell, which dominated the
    wall clock.  Chunked submission amortises that overhead; each cell is
    still timed individually.
    """
    return [execute_cell(spec) for spec in specs]


class SweepExecutor:
    """Executes sweeps: cache lookup, parallel fan-out, progress, artifacts.

    Parameters
    ----------
    cache_dir:
        Directory for per-cell result files (``<spec_hash>.json``).  ``None``
        disables caching.
    max_workers:
        Worker process count.  Defaults to ``REPRO_SWEEP_WORKERS`` or the
        machine's CPU count.
    parallel:
        ``True`` forces the process pool, ``False`` forces in-process serial
        execution, ``None`` (default) picks parallel only when it can help
        (more than one pending cell and more than one worker available).
    chunk_size:
        Cells per worker submission.  ``None`` (default) picks automatically
        from the pending-cell count (one submission per cell for small
        grids, bounded chunks for large ones) so ProcessPoolExecutor IPC no
        longer dominates grids of sub-second cells.  ``1`` restores
        per-cell submission.  ``REPRO_SWEEP_CHUNK`` overrides the default.
    progress:
        Callable receiving one human-readable line per completed cell
        (default: stderr).  Pass ``None`` to silence.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_workers: Optional[int] = None,
        parallel: Optional[bool] = None,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressFn] = _default_progress,
    ) -> None:
        self.cache_dir = cache_dir
        env_workers = os.environ.get(WORKERS_ENV)
        if max_workers is None and env_workers:
            try:
                max_workers = max(1, int(env_workers))
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {env_workers!r}"
                )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.parallel = parallel
        env_chunk = os.environ.get(CHUNK_ENV)
        if chunk_size is None and env_chunk:
            try:
                chunk_size = int(env_chunk)
            except ValueError:
                raise ConfigurationError(
                    f"{CHUNK_ENV} must be an integer, got {env_chunk!r}"
                )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be a positive integer, got {chunk_size}"
            )
        self.chunk_size = chunk_size
        self.progress = progress or (lambda message: None)

    def _effective_chunk(self, pending: int, workers: int) -> int:
        """Cells per submission for this run (auto unless configured).

        Auto mode targets ~4 submissions per worker — enough slack for load
        balancing across uneven cells — capped at :data:`MAX_AUTO_CHUNK`.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if workers <= 0:
            return 1
        auto = pending // (workers * 4)
        return max(1, min(MAX_AUTO_CHUNK, auto))

    # ------------------------------------------------------------------
    def _cache_path(self, spec_hash: str) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"{spec_hash}.json")

    def _load_cached(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        path = self._cache_path(spec_hash)
        if not path or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None  # unreadable/corrupt cache entries are recomputed
        return payload.get("metrics")

    def _store(self, result: CellResult) -> None:
        path = self._cache_path(result.spec_hash)
        if not path:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
        os.replace(temporary, path)  # atomic: concurrent sweeps never see partial files

    # ------------------------------------------------------------------
    def run(
        self,
        sweep: Union[SweepSpec, Sequence[ScenarioSpec]],
        force: bool = False,
    ) -> SweepResult:
        """Execute every cell of ``sweep``, serving cached cells from disk.

        Results come back in grid order regardless of which worker finished
        first.  ``force=True`` recomputes (and overwrites) cached cells.
        """
        if isinstance(sweep, SweepSpec):
            name, specs = sweep.name, sweep.cells()
        else:
            specs = list(sweep)
            name = specs[0].label if len(specs) == 1 else "adhoc"
        total = len(specs)
        hashes = [spec.spec_hash() for spec in specs]
        slots: List[Optional[CellResult]] = [None] * total

        pending: List[int] = []
        for index, (spec, spec_hash) in enumerate(zip(specs, hashes)):
            cached = None if force else self._load_cached(spec_hash)
            if cached is not None:
                slots[index] = CellResult(
                    spec=spec, spec_hash=spec_hash, metrics=cached, cached=True
                )
            else:
                pending.append(index)

        completed = total - len(pending)
        for index in range(total):
            if slots[index] is not None:
                self.progress(self._line(index, total, slots[index]))

        workers = min(self.max_workers, len(pending)) if pending else 0
        use_pool = (
            self.parallel if self.parallel is not None else (len(pending) > 1 and workers > 1)
        )

        if pending and use_pool:
            chunk = self._effective_chunk(len(pending), workers)
            chunks = [pending[i : i + chunk] for i in range(0, len(pending), chunk)]
            with concurrent.futures.ProcessPoolExecutor(max_workers=max(1, workers)) as pool:
                futures = {
                    pool.submit(execute_cells, [specs[index] for index in indices]): indices
                    for indices in chunks
                }
                for future in concurrent.futures.as_completed(futures):
                    indices = futures[future]
                    for index, (spec_hash, metrics, elapsed) in zip(
                        indices, future.result()
                    ):
                        slots[index] = CellResult(
                            spec=specs[index],
                            spec_hash=spec_hash,
                            metrics=metrics,
                            elapsed_seconds=elapsed,
                        )
                        self._store(slots[index])
                        completed += 1
                        self.progress(self._line(index, total, slots[index], completed))
        else:
            for index in pending:
                spec_hash, metrics, elapsed = execute_cell(specs[index])
                slots[index] = CellResult(
                    spec=specs[index],
                    spec_hash=spec_hash,
                    metrics=metrics,
                    elapsed_seconds=elapsed,
                )
                self._store(slots[index])
                completed += 1
                self.progress(self._line(index, total, slots[index], completed))

        return SweepResult(name=name, results=[slot for slot in slots if slot is not None])

    def run_one(self, spec: ScenarioSpec, force: bool = False) -> CellResult:
        """Execute a single scenario (with the same caching semantics)."""
        return self.run([spec], force=force).results[0]

    # ------------------------------------------------------------------
    @staticmethod
    def _line(
        index: int, total: int, result: CellResult, completed: Optional[int] = None
    ) -> str:
        spec = result.spec
        status = "cached" if result.cached else f"{result.elapsed_seconds:.2f}s"
        position = completed if completed is not None else index + 1
        return (
            f"[{position:>3}/{total}] {spec.label} n={spec.n} {spec.testbed} "
            f"seed={spec.seed} ({result.spec_hash}) {status}"
        )
