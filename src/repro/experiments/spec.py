"""Declarative experiment descriptions: scenarios, sweeps and spec hashing.

A :class:`ScenarioSpec` is one *cell* of the paper's evaluation grid — one
protocol, at one system size, under one network model, one adversary and one
workload, with one seed — expressed as plain data.  A :class:`SweepSpec`
expands a base scenario along named axes (a cartesian grid) and/or a list of
per-series variants into the full list of cells.

Because a cell result is a pure function of its spec, the spec's canonical
hash (:meth:`ScenarioSpec.spec_hash`) doubles as the cache key used by
:class:`repro.experiments.executor.SweepExecutor` to skip already-computed
cells on re-run, and guarantees parallel and serial execution produce
identical results.

Example
-------
>>> from repro.experiments import ScenarioSpec, SweepSpec
>>> sweep = SweepSpec(
...     name="demo",
...     base=ScenarioSpec(protocol="delphi", epsilon=1.0, delta_max=16.0),
...     axes={"n": [5, 7, 10], "protocol": ["delphi", "fin"]},
... )
>>> len(sweep.cells())
6
"""

from __future__ import annotations

import hashlib
import itertools
import json
import zlib
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.protocols.registry import is_known_protocol, protocol_names

#: Scenario kinds with a registered cell function (see ``cells.py``).
KNOWN_KINDS = ("protocol", "bitcoin_range", "drone_iou")

#: Protocols the protocol cell can run, from the protocol-runner registry.
KNOWN_PROTOCOLS = protocol_names()

#: Network/compute models a cell can run under.
KNOWN_TESTBEDS = ("lan", "aws", "cps", "ideal")

#: Input workloads for protocol cells.
KNOWN_WORKLOADS = ("spread", "bitcoin", "drone", "sensors", "normal")

#: Byzantine strategies a cell can attach to corrupted nodes.
KNOWN_ADVERSARIES = ("none", "crash", "delay", "equivocate", "random-bit", "spam")

#: Version token mixed into every spec hash.  Bump whenever a change outside
#: the spec itself alters cell results for the same spec (e.g. the PR-2 move
#: to per-pair block-drawn RNG streams), so stale on-disk caches are
#: invalidated instead of silently mixing old- and new-scheme numbers.
RESULT_SCHEME_VERSION = 2


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment cell, fully described as data.

    Parameters
    ----------
    name:
        Series label used in reports (defaults to the protocol name).
    kind:
        Which registered cell function runs this spec: ``"protocol"`` runs a
        protocol instance through the simulator; ``"bitcoin_range"`` and
        ``"drone_iou"`` are workload-analysis cells (Figs. 4 and 5).
    protocol, n, epsilon, rho0, delta_max, max_rounds:
        Protocol configuration.  ``rho0 = None`` follows the paper's static
        choice ``rho0 = epsilon``.
    testbed:
        ``"aws"`` (geo-distributed WAN model), ``"cps"`` (Raspberry-Pi
        cluster model), ``"lan"`` (small jittered network, the test suite's
        default) or ``"ideal"`` (the runner's built-in defaults).
    workload:
        Where honest inputs come from: ``"spread"`` (deterministic inputs
        spread across ``delta`` around ``centre``), ``"bitcoin"``,
        ``"drone"``, ``"sensors"`` or ``"normal"``.
    delta, centre:
        The realised honest input range and its centre (spread workload),
        also recorded as parameters for the other workloads.
    adversary, num_byzantine, adversarial_delay:
        Fault injection: strategy name, how many (highest-id) nodes are
        corrupted, and the extra network delay the adversary may add.
    seed:
        Master seed; every random component (network jitter, workload noise,
        adversary randomness) derives deterministically from it.
    extras:
        Free-form kind-specific parameters (e.g. ``minutes`` for the
        bitcoin-range cell).  Hashed along with everything else.
    """

    name: str = ""
    kind: str = "protocol"
    protocol: str = "delphi"
    n: int = 7
    epsilon: float = 1.0
    rho0: Optional[float] = None
    delta_max: float = 16.0
    max_rounds: Optional[int] = 6
    testbed: str = "lan"
    workload: str = "spread"
    delta: float = 4.0
    centre: float = 100.0
    adversary: str = "none"
    num_byzantine: int = 0
    adversarial_delay: float = 0.0
    seed: int = 0
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ConfigurationError(f"unknown scenario kind {self.kind!r}")
        if self.kind == "protocol" and not is_known_protocol(self.protocol):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.testbed not in KNOWN_TESTBEDS:
            raise ConfigurationError(f"unknown testbed {self.testbed!r}")
        if self.workload not in KNOWN_WORKLOADS:
            raise ConfigurationError(f"unknown workload {self.workload!r}")
        if self.adversary not in KNOWN_ADVERSARIES:
            raise ConfigurationError(f"unknown adversary {self.adversary!r}")
        if self.n <= 0:
            raise ConfigurationError("n must be positive")
        if not 0 <= self.num_byzantine < self.n:
            raise ConfigurationError("num_byzantine must be in [0, n)")

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable series label."""
        return self.name or self.protocol

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe) used for hashing and artifacts."""
        data = asdict(self)
        data["extras"] = dict(self.extras)
        return data

    def canonical_json(self) -> str:
        """Canonical serialisation: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable content hash of the spec — the executor's cache key.

        Includes :data:`RESULT_SCHEME_VERSION` so result-affecting changes
        to the simulator (not visible in the spec) invalidate old caches.
        """
        blob = f"v{RESULT_SCHEME_VERSION}:{self.canonical_json()}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def replace(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced.

        Keys that are not dataclass fields are merged into ``extras`` so
        sweep axes can carry kind-specific parameters.
        """
        known = {f.name for f in fields(self)}
        direct = {key: value for key, value in overrides.items() if key in known}
        extra = {key: value for key, value in overrides.items() if key not in known}
        if extra:
            merged = dict(self.extras)
            merged.update(extra)
            direct["extras"] = merged
        return replace(self, **direct)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        return cls().replace(**dict(data))


def _derived_seed(sweep_name: str, assignment: Mapping[str, Any]) -> int:
    """Deterministic per-cell seed from the cell's own grid coordinates.

    Depends only on the sweep name and the axis/variant values of the cell
    (not on grid order), so adding an axis value never reseeds existing
    cells and parallel and serial execution see identical seeds.
    """
    blob = json.dumps(
        {"sweep": sweep_name, "cell": {k: repr(v) for k, v in sorted(assignment.items())}},
        sort_keys=True,
    )
    return zlib.crc32(blob.encode("utf-8")) & 0x7FFFFFFF


@dataclass
class SweepSpec:
    """A full experiment grid: a base scenario expanded along axes/variants.

    ``cells()`` yields ``product(axes) x variants`` scenarios (plus any
    explicitly listed ``cells`` passed in).  ``axes`` maps a
    :class:`ScenarioSpec` field name (or an ``extras`` key) to the values it
    sweeps over; ``variants`` is a list of override dicts for non-product
    series (e.g. Fig. 6a's two Delphi input ranges next to one-config
    baselines).

    Per-cell seeding: if neither the axes nor a variant sets ``seed``, each
    cell receives a deterministic seed derived from the sweep name and the
    cell's own coordinates (see :func:`_derived_seed`); pass
    ``derive_seeds=False`` to inherit the base seed everywhere instead.
    """

    name: str
    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    variants: Sequence[Mapping[str, Any]] = ()
    explicit: Sequence[ScenarioSpec] = ()
    description: str = ""
    derive_seeds: bool = True

    def cells(self) -> List[ScenarioSpec]:
        """Expand the sweep into its ordered list of scenario cells."""
        if self.explicit and not self.axes and not self.variants:
            return list(self.explicit)
        axis_names = list(self.axes)
        axis_values = [list(self.axes[name]) for name in axis_names]
        variants: List[Mapping[str, Any]] = list(self.variants) or [{}]
        expanded: List[ScenarioSpec] = []
        for combo in itertools.product(*axis_values) if axis_names else [()]:
            assignment = dict(zip(axis_names, combo))
            for variant in variants:
                overrides = dict(assignment)
                overrides.update(variant)
                if self.derive_seeds and "seed" not in overrides:
                    overrides["seed"] = _derived_seed(
                        self.name, {**overrides, "base_seed": self.base.seed}
                    )
                expanded.append(self.base.replace(**overrides))
        expanded.extend(self.explicit)
        return expanded

    def __len__(self) -> int:
        return len(self.cells())
