"""Command-line interface for the experiment harness: ``python -m repro``.

Three subcommands:

``repro list-scenarios``
    Show every registered preset sweep with its description and cell count.

``repro sweep NAME``
    Execute a preset sweep (parallel by default, cached by spec hash) and
    print the protocol-by-n report table; ``--json``/``--csv`` write the
    artifact files, ``--dry-run`` prints the expanded grid without running.

``repro run``
    Execute one ad-hoc scenario assembled from flags and print its metrics
    as JSON.

Examples
--------
::

    PYTHONPATH=src python -m repro list-scenarios
    PYTHONPATH=src python -m repro sweep smoke --workers 4 --json out/smoke.json
    PYTHONPATH=src python -m repro sweep fig6a --dry-run
    PYTHONPATH=src python -m repro run --protocol delphi --n 7 --delta-max 16 --testbed aws
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.errors import ConfigurationError

from repro.experiments.executor import SweepExecutor
from repro.experiments.presets import SCALES, list_presets, preset
from repro.experiments.spec import (
    KNOWN_ADVERSARIES,
    KNOWN_PROTOCOLS,
    KNOWN_TESTBEDS,
    KNOWN_WORKLOADS,
    ScenarioSpec,
)

#: Default on-disk result cache used by the CLI.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Metrics the report table can render (ExperimentRecord numeric fields).
TABLE_METRICS = (
    "runtime_seconds",
    "megabytes",
    "message_count",
    "output_spread",
    "validity_margin",
)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Delphi reproduction experiment harness: run declarative "
            "protocol sweeps in parallel with per-cell result caching."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-scenarios", help="list the registered preset sweeps"
    )
    list_parser.add_argument(
        "--scale", choices=SCALES, default="quick", help="scale used for cell counts"
    )

    sweep = subparsers.add_parser("sweep", help="execute a preset sweep")
    sweep.add_argument("name", help="preset name (see list-scenarios)")
    sweep.add_argument("--scale", choices=SCALES, default="quick")
    sweep.add_argument("--workers", type=int, default=None, help="worker process count")
    sweep.add_argument(
        "--serial", action="store_true", help="run in-process instead of the worker pool"
    )
    sweep.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"per-cell result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    sweep.add_argument(
        "--force", action="store_true", help="recompute cells even when cached"
    )
    sweep.add_argument(
        "--dry-run", action="store_true", help="print the expanded grid, run nothing"
    )
    sweep.add_argument("--json", dest="json_path", help="write full results as JSON")
    sweep.add_argument("--csv", dest="csv_path", help="write per-cell rows as CSV")
    sweep.add_argument(
        "--metric",
        default="runtime_seconds",
        help="metric rendered in the report table (default: runtime_seconds)",
    )
    sweep.add_argument("--quiet", action="store_true", help="suppress progress lines")

    run = subparsers.add_parser("run", help="execute one ad-hoc scenario")
    run.add_argument("--protocol", choices=KNOWN_PROTOCOLS, default="delphi")
    run.add_argument("--n", type=int, default=7)
    run.add_argument("--epsilon", type=float, default=1.0)
    run.add_argument("--rho0", type=float, default=None)
    run.add_argument("--delta-max", type=float, default=16.0)
    run.add_argument("--max-rounds", type=int, default=6)
    run.add_argument("--testbed", choices=KNOWN_TESTBEDS, default="lan")
    run.add_argument("--workload", choices=KNOWN_WORKLOADS, default="spread")
    run.add_argument("--delta", type=float, default=4.0, help="honest input range")
    run.add_argument("--centre", type=float, default=100.0, help="input range centre")
    run.add_argument("--adversary", choices=KNOWN_ADVERSARIES, default="none")
    run.add_argument("--num-byzantine", type=int, default=0)
    run.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = list_presets(scale=args.scale)
    width = max(len(name) for name, _d, _c in rows)
    print(f"{'preset'.ljust(width)}  cells  description")
    for name, description, count in rows:
        print(f"{name.ljust(width)}  {count:>5}  {description}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.metric not in TABLE_METRICS:
        raise ConfigurationError(
            f"unknown metric {args.metric!r} (known: {', '.join(TABLE_METRICS)})"
        )
    sweep = preset(args.name, scale=args.scale)
    cells = sweep.cells()
    if args.dry_run:
        print(f"# sweep {sweep.name}: {len(cells)} cells ({args.scale} scale)")
        for index, spec in enumerate(cells):
            print(
                f"  [{index + 1:>3}] {spec.label:<16} kind={spec.kind} n={spec.n} "
                f"testbed={spec.testbed} seed={spec.seed} hash={spec.spec_hash()}"
            )
        return 0
    executor = SweepExecutor(
        cache_dir=None if args.no_cache else args.cache_dir,
        max_workers=args.workers,
        parallel=False if args.serial else None,
    )
    if args.quiet:
        executor.progress = lambda message: None
    result = executor.run(sweep, force=args.force)
    fresh = len(result) - result.cached_count
    print(f"# sweep {result.name}: {len(result)} cells ({result.cached_count} cached, {fresh} computed)")
    collector = result.to_collector()
    if collector.records:
        print(collector.render_table(args.metric))
    else:  # workload-analysis sweeps have no protocol table; dump metrics
        for cell in result:
            print(f"## {cell.label} ({cell.spec_hash})")
            print(json.dumps(cell.metrics, indent=2, sort_keys=True))
    if args.json_path:
        print(f"wrote {result.write_json(args.json_path)}")
    if args.csv_path:
        print(f"wrote {result.write_csv(args.csv_path)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        protocol=args.protocol,
        n=args.n,
        epsilon=args.epsilon,
        rho0=args.rho0,
        delta_max=args.delta_max,
        max_rounds=args.max_rounds,
        testbed=args.testbed,
        workload=args.workload,
        delta=args.delta,
        centre=args.centre,
        adversary=args.adversary,
        num_byzantine=args.num_byzantine,
        seed=args.seed,
    )
    executor = SweepExecutor(cache_dir=None, progress=lambda message: None)
    cell = executor.run_one(spec)
    print(json.dumps(cell.as_dict(), indent=2, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "list-scenarios":
            return _cmd_list(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "run":
            return _cmd_run(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2
