"""Command-line interface for the experiment harness: ``python -m repro``.

Subcommands:

``repro list-scenarios``
    Show every registered preset sweep with its description and cell count.

``repro sweep NAME``
    Execute a preset sweep (parallel by default, cached by spec hash) and
    print the protocol-by-n report table; ``--json``/``--csv`` write the
    artifact files, ``--dry-run`` prints the expanded grid without running.

``repro run``
    Execute one ad-hoc scenario assembled from flags and print its metrics
    as JSON.

``repro perf``
    Run the perf basket (fast engine timed against the reference engine,
    byte-identical results asserted) and write a ``BENCH_<date>.json``
    artifact; ``--check`` gates against a committed baseline, ``--compare``
    renders a per-scenario delta table vs an older artifact (exit 1 on
    regression or fingerprint mismatch), ``--profile`` embeds a per-layer
    cProfile attribution in the artifact.

``repro faults``
    Run a fault-injection campaign (protocol × fault case × schedule × n) on
    both engines with runtime invariant monitors attached, assert engine
    equivalence under faults, and write a JSON verdict artifact.
    ``--replay BUNDLE`` re-runs a violation repro bundle and exits non-zero
    when the recorded violation no longer reproduces (stale-corpus check).

``repro fuzz``
    Coverage-guided adversarial-schedule search: mutate fault schedules
    (corruptions, network-fault windows, seeds, workloads) toward invariant
    near-misses using the monitors' margin channels as fitness, greedily
    shrink the winners, and emit a deterministic near-miss leaderboard
    artifact; ``--update-corpus`` promotes shrunk schedules into the
    committed adversarial corpus replayed by tier-1.

``repro sharded-smoke``
    Run one large two-level ``sharded-delphi`` cell (default n=1000,
    groups of 32) on the fast engine with the hierarchical
    epsilon-agreement monitor attached; prints a verdict JSON and exits
    non-zero unless the monitor stays green.  ``--reference`` replays the
    cell on the reference engine and asserts byte-identical results.

``repro serve``
    Run the epoch-pipelined oracle service: agree on a streaming workload
    (bitcoin/sensors/drone) epoch after epoch on the chosen engine
    (asyncio = real concurrency, fast/reference = deterministic), with
    persistent PKI, node churn, certificate-stream invariants, and a
    cross-engine parity replay of every epoch (on by default).  Prints
    per-epoch certificates and epochs/sec / certs/sec throughput.

``repro cluster``
    Deploy the oracle service as a real multi-process cluster: a supervisor
    spawns one OS process per node, the mesh talks over authenticated
    TCP/Unix sockets, and ``--crash-node`` SIGKILLs a node mid-epoch to
    exercise crash recovery.  ``--no-spawn`` waits for externally started
    node processes instead (the docker-compose recipe).

``repro cluster-node``
    Run one oracle node process against a shared cluster config (spawned by
    ``repro cluster``, or started by docker-compose).

``repro chaos``
    Soak a live multi-process cluster (optionally with a gateway front)
    under a seeded chaos schedule: repeated SIGKILL/respawn, SIGSTOP/SIGCONT
    pauses and wire-level faults (loss windows, partitions, corruption),
    with every epoch audited by the liveness monitor — certified within
    budget or explicitly skipped-and-accounted.  Writes a
    ``CHAOS_<seed>.json`` verdict whose deterministic section is
    byte-identical across same-seed runs; exits non-zero on any monitor
    violation or unaccounted epoch.  ``--soak`` loops freshly-seeded
    iterations until a wall-clock budget is spent.

``repro gateway``
    Serve the oracle to clients: an HTTP/WebSocket gateway over the oracle
    service, streaming SMR certificates to WebSocket subscribers with
    per-client bounded queues (slow consumers are evicted, not allowed to
    stall the stream), answering ``/certs`` queries from a bounded
    certificate index, ingesting client ticks into epochs, and exporting a
    ``/metrics`` JSON snapshot.

``repro loadgen``
    Load-test a gateway with thousands of concurrent WebSocket subscribers
    (plus optional stalled clients and tick publishers); reports certs/sec,
    p50/p99 delivery latency and the zero-loss invariant for non-evicted
    subscribers, with an optional latency-histogram artifact.

Examples
--------
::

    PYTHONPATH=src python -m repro list-scenarios
    PYTHONPATH=src python -m repro sweep smoke --workers 4 --json out/smoke.json
    PYTHONPATH=src python -m repro sweep fig6a --dry-run
    PYTHONPATH=src python -m repro run --protocol delphi --n 7 --delta-max 16 --testbed aws
    PYTHONPATH=src python -m repro perf --quick --check benchmarks/perf_baseline.json
    PYTHONPATH=src python -m repro perf --profile --compare BENCH_2026-07-25.json
    PYTHONPATH=src python -m repro faults --campaign smoke --output fault-artifacts
    PYTHONPATH=src python -m repro faults --replay fault-artifacts/bundles/VIOLATION_xyz.json
    PYTHONPATH=src python -m repro fuzz --budget 200 --protocol delphi --seed 0
    PYTHONPATH=src python -m repro fuzz --budget 50 --min-margin 0.85 --output out
    PYTHONPATH=src python -m repro sharded-smoke --n 1000 --group-size 32 --output out/sharded_smoke.json
    PYTHONPATH=src python -m repro serve --workload bitcoin --epochs 10 --engine asyncio
    PYTHONPATH=src python -m repro serve --workload sensors --epochs 5 --churn 1 --json out/serve.json
    PYTHONPATH=src python -m repro chaos --workload sensors --n 7 --epochs 6 --standard --seed 5
    PYTHONPATH=src python -m repro chaos --n 4 --epochs 4 --kill 1:2.0 --pause 2:4.0:1.0 --loss 0.2:6.0:8.0
    PYTHONPATH=src python -m repro gateway --workload bitcoin --epochs 5 --port 8080
    PYTHONPATH=src python -m repro loadgen --subscribers 1000 --epochs 3 --json out/load.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.errors import ConfigurationError, ReproError

from repro.experiments.executor import SweepExecutor
from repro.experiments.presets import SCALES, list_presets, preset
from repro.experiments.spec import (
    KNOWN_ADVERSARIES,
    KNOWN_PROTOCOLS,
    KNOWN_TESTBEDS,
    KNOWN_WORKLOADS,
    ScenarioSpec,
)
from repro.oracle.service import KNOWN_SERVICE_ENGINES as SERVICE_ENGINES
from repro.workloads import EPOCH_WORKLOADS as SERVICE_WORKLOADS

#: Default on-disk result cache used by the CLI.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Metrics the report table can render (ExperimentRecord numeric fields).
TABLE_METRICS = (
    "runtime_seconds",
    "megabytes",
    "message_count",
    "output_spread",
    "validity_margin",
)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Delphi reproduction experiment harness: run declarative "
            "protocol sweeps in parallel with per-cell result caching."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-scenarios", help="list the registered preset sweeps"
    )
    list_parser.add_argument(
        "--scale", choices=SCALES, default="quick", help="scale used for cell counts"
    )

    sweep = subparsers.add_parser("sweep", help="execute a preset sweep")
    sweep.add_argument("name", help="preset name (see list-scenarios)")
    sweep.add_argument("--scale", choices=SCALES, default="quick")
    sweep.add_argument("--workers", type=int, default=None, help="worker process count")
    sweep.add_argument(
        "--chunk",
        type=int,
        default=None,
        help=(
            "cells per worker submission (default: auto from the grid size; "
            "1 = one submission per cell)"
        ),
    )
    sweep.add_argument(
        "--serial", action="store_true", help="run in-process instead of the worker pool"
    )
    sweep.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"per-cell result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    sweep.add_argument(
        "--force", action="store_true", help="recompute cells even when cached"
    )
    sweep.add_argument(
        "--dry-run", action="store_true", help="print the expanded grid, run nothing"
    )
    sweep.add_argument("--json", dest="json_path", help="write full results as JSON")
    sweep.add_argument("--csv", dest="csv_path", help="write per-cell rows as CSV")
    sweep.add_argument(
        "--metric",
        default="runtime_seconds",
        help="metric rendered in the report table (default: runtime_seconds)",
    )
    sweep.add_argument("--quiet", action="store_true", help="suppress progress lines")

    run = subparsers.add_parser("run", help="execute one ad-hoc scenario")
    run.add_argument("--protocol", choices=KNOWN_PROTOCOLS, default="delphi")
    run.add_argument("--n", type=int, default=7)
    run.add_argument("--epsilon", type=float, default=1.0)
    run.add_argument("--rho0", type=float, default=None)
    run.add_argument("--delta-max", type=float, default=16.0)
    run.add_argument("--max-rounds", type=int, default=6)
    run.add_argument("--testbed", choices=KNOWN_TESTBEDS, default="lan")
    run.add_argument("--workload", choices=KNOWN_WORKLOADS, default="spread")
    run.add_argument("--delta", type=float, default=4.0, help="honest input range")
    run.add_argument("--centre", type=float, default=100.0, help="input range centre")
    run.add_argument("--adversary", choices=KNOWN_ADVERSARIES, default="none")
    run.add_argument("--num-byzantine", type=int, default=0)
    run.add_argument("--seed", type=int, default=0)

    perf = subparsers.add_parser(
        "perf", help="run the perf basket and write a BENCH_<date>.json artifact"
    )
    perf.add_argument(
        "--quick", action="store_true", help="run only the quick (CI smoke) scenarios"
    )
    perf.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        help="run only the named scenario (repeatable; see the basket in repro.perf)",
    )
    perf.add_argument(
        "--skip-reference",
        action="store_true",
        help="time the fast engine only (skips the equivalence check)",
    )
    perf.add_argument(
        "--output", default=".", help="directory for the BENCH_<date>.json artifact"
    )
    perf.add_argument(
        "--no-artifact", action="store_true", help="print results without writing a file"
    )
    perf.add_argument(
        "--check",
        dest="baseline_path",
        help="compare against a committed baseline file and exit 1 on regression",
    )
    perf.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run each scenario once more under cProfile and embed the "
            "per-layer time attribution in the BENCH artifact"
        ),
    )
    perf.add_argument(
        "--compare",
        dest="compare_path",
        help=(
            "render a per-scenario delta table (events/sec, speedup, "
            "fingerprint match) against an older BENCH artifact or baseline "
            "file; exits 1 on regression or fingerprint mismatch"
        ),
    )
    perf.add_argument(
        "--regression-threshold",
        type=float,
        default=None,
        help=(
            "tolerated fractional throughput drop for --compare "
            "(default 0.20 = fail below 80%% of the old throughput)"
        ),
    )
    perf.add_argument(
        "--summary",
        dest="summary_path",
        help=(
            "append the --compare markdown table to this file "
            "(CI passes $GITHUB_STEP_SUMMARY)"
        ),
    )
    perf.add_argument(
        "--sharding-table",
        action="store_true",
        help=(
            "measure the flat-vs-sharded Delphi comparison across "
            "n in {40,160,400,1000} and embed the table in the artifact"
        ),
    )
    perf.add_argument("--quiet", action="store_true", help="suppress progress lines")

    faults = subparsers.add_parser(
        "faults",
        help="run a fault-injection campaign with runtime invariant monitors",
    )
    faults.add_argument(
        "--campaign", default="smoke", help="campaign name (see --list)"
    )
    faults.add_argument(
        "--list", action="store_true", help="list the registered campaigns"
    )
    faults.add_argument(
        "--dry-run", action="store_true", help="print the expanded matrix, run nothing"
    )
    faults.add_argument(
        "--output",
        default=".",
        help="directory for the FAULTS_<campaign>.json verdict artifact",
    )
    faults.add_argument(
        "--no-artifact", action="store_true", help="print results without writing a file"
    )
    faults.add_argument(
        "--replay",
        dest="bundle_path",
        help="re-run the cell recorded in a violation repro bundle",
    )
    faults.add_argument("--quiet", action="store_true", help="suppress progress lines")

    fuzz = subparsers.add_parser(
        "fuzz",
        help=(
            "coverage-guided adversarial-schedule search: mutate fault "
            "schedules toward invariant near-misses, shrink the winners"
        ),
    )
    fuzz.add_argument(
        "--budget", type=int, default=200, help="engine runs to spend (default: 200)"
    )
    fuzz.add_argument(
        "--protocol",
        action="append",
        dest="protocols",
        choices=KNOWN_PROTOCOLS,
        help="protocol to search (repeatable; default: delphi fin)",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="search seed (determinism)")
    fuzz.add_argument(
        "--min-margin",
        type=float,
        default=0.9,
        help=(
            "near-miss threshold on the normalised margin: runs whose worst "
            "channel ratio is below this are kept and mutated (default: 0.9)"
        ),
    )
    fuzz.add_argument(
        "--corpus",
        default="tests/data/adversarial_corpus.json",
        help="persistent corpus seeded into the search (default: tests/data/adversarial_corpus.json)",
    )
    fuzz.add_argument(
        "--no-corpus", action="store_true", help="search from scratch, ignore the corpus"
    )
    fuzz.add_argument(
        "--update-corpus",
        action="store_true",
        help="promote shrunk winners into the corpus file",
    )
    fuzz.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="simulation engine the search runs on (default: fast)",
    )
    fuzz.add_argument(
        "--output",
        default=".",
        help="directory for the FUZZ_seed<seed>.json leaderboard artifact",
    )
    fuzz.add_argument(
        "--no-artifact", action="store_true", help="print results without writing a file"
    )
    fuzz.add_argument("--quiet", action="store_true", help="suppress progress lines")

    sharded = subparsers.add_parser(
        "sharded-smoke",
        help=(
            "run one large two-level sharded-delphi cell on the fast engine "
            "with the hierarchical agreement monitor attached"
        ),
    )
    sharded.add_argument("--n", type=int, default=1000, help="total node count")
    sharded.add_argument(
        "--group-size", type=int, default=32, help="consistent-hash group size"
    )
    sharded.add_argument("--testbed", choices=KNOWN_TESTBEDS, default="lan")
    sharded.add_argument("--epsilon", type=float, default=1.0)
    sharded.add_argument("--delta-max", type=float, default=16.0)
    sharded.add_argument("--seed", type=int, default=0)
    sharded.add_argument(
        "--reference",
        action="store_true",
        help="also run the reference engine and assert fingerprint parity",
    )
    sharded.add_argument(
        "--output",
        default=None,
        help="write the verdict JSON to this path (default: stdout only)",
    )
    sharded.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the epoch-pipelined oracle service over a streaming workload",
    )
    serve.add_argument(
        "--workload",
        choices=sorted(SERVICE_WORKLOADS),
        default="bitcoin",
        help="streaming workload feeding per-epoch inputs (default: bitcoin)",
    )
    serve.add_argument("--epochs", type=int, default=10, help="epochs to serve")
    serve.add_argument("--n", type=int, default=7, help="oracle network size")
    serve.add_argument(
        "--engine",
        choices=SERVICE_ENGINES,
        default="asyncio",
        help="epoch execution engine (default: asyncio, the real-concurrency one)",
    )
    serve.add_argument(
        "--churn",
        type=int,
        default=0,
        help="nodes offline per epoch (crash-restart rotation, <= t)",
    )
    serve.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the per-epoch deterministic-engine parity replay",
    )
    serve.add_argument(
        "--strict-parity",
        action="store_true",
        help=(
            "fail on any asyncio-vs-simulator certificate value difference "
            "instead of escalating to the byte-exact schedule replay "
            "(legitimate asynchrony can certify a different grid value)"
        ),
    )
    serve.add_argument(
        "--epsilon", type=float, default=None, help="override the workload's epsilon"
    )
    serve.add_argument(
        "--delta-max", type=float, default=None, help="override the workload's Delta"
    )
    serve.add_argument("--max-rounds", type=int, default=6)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--latency",
        type=float,
        default=None,
        help="asyncio per-message delivery latency in seconds (default: none)",
    )
    serve.add_argument(
        "--epoch-timeout",
        type=float,
        default=30.0,
        help="asyncio wall-clock budget per epoch in seconds (default: 30)",
    )
    serve.add_argument("--json", dest="json_path", help="write the full result as JSON")
    serve.add_argument("--quiet", action="store_true", help="suppress per-epoch lines")

    cluster = subparsers.add_parser(
        "cluster",
        help="deploy a multi-process oracle cluster over real sockets",
    )
    cluster.add_argument(
        "--workload",
        choices=sorted(SERVICE_WORKLOADS),
        default="sensors",
        help="streaming workload feeding per-epoch inputs (default: sensors)",
    )
    cluster.add_argument("--n", type=int, default=4, help="oracle network size")
    cluster.add_argument("--epochs", type=int, default=3, help="epochs to serve")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--transport",
        choices=("unix", "tcp"),
        default="unix",
        help="socket family for the node mesh (default: unix)",
    )
    cluster.add_argument(
        "--runtime-dir",
        default=None,
        help="directory for sockets, the config handout and node logs "
        "(default: a fresh temporary directory)",
    )
    cluster.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (tcp transport only)"
    )
    cluster.add_argument(
        "--base-port",
        type=int,
        default=9500,
        help="first TCP port; node k listens on base+k (tcp transport only)",
    )
    cluster.add_argument(
        "--config",
        dest="config_path",
        default=None,
        help="use an existing cluster config instead of generating one "
        "(the docker-compose recipe shares one config between services)",
    )
    cluster.add_argument(
        "--write-config",
        dest="write_config",
        default=None,
        help="write the generated config JSON to this path and exit",
    )
    cluster.add_argument(
        "--no-spawn",
        action="store_true",
        help="do not spawn node processes; wait for externally started "
        "cluster-node processes (docker-compose mode)",
    )
    cluster.add_argument(
        "--crash-node",
        type=int,
        default=None,
        help="SIGKILL this node mid-run to exercise crash recovery",
    )
    cluster.add_argument(
        "--crash-epoch",
        type=int,
        default=1,
        help="epoch in which to inject the crash (default: 1)",
    )
    cluster.add_argument(
        "--epoch-timeout",
        type=float,
        default=30.0,
        help="wall-clock budget per epoch in seconds (default: 30)",
    )
    cluster.add_argument(
        "--epoch-interval",
        type=float,
        default=0.0,
        help="pause between epochs in seconds; pacing lets a respawned "
        "process rejoin while the run is still live (default: 0)",
    )
    cluster.add_argument(
        "--epsilon", type=float, default=None, help="override the workload's epsilon"
    )
    cluster.add_argument(
        "--delta-max", type=float, default=None, help="override the workload's Delta"
    )
    cluster.add_argument("--max-rounds", type=int, default=6)
    cluster.add_argument(
        "--json", dest="json_path", help="write the cluster report as JSON"
    )
    cluster.add_argument("--quiet", action="store_true", help="suppress progress lines")

    cluster_node = subparsers.add_parser(
        "cluster-node",
        help="run one oracle node process of a cluster (spawned by 'cluster')",
    )
    cluster_node.add_argument(
        "--config", required=True, help="path to the shared cluster config JSON"
    )
    cluster_node.add_argument(
        "--node-id", type=int, required=True, help="this process's node id"
    )

    chaos = subparsers.add_parser(
        "chaos",
        help="soak a live multi-process cluster under a seeded chaos "
        "schedule (SIGKILL/SIGSTOP + wire faults) with liveness auditing",
    )
    chaos.add_argument(
        "--workload",
        choices=sorted(SERVICE_WORKLOADS),
        default="sensors",
        help="streaming workload feeding per-epoch inputs (default: sensors)",
    )
    chaos.add_argument(
        "--n", type=int, default=4, help="oracle network size (minimum 4)"
    )
    chaos.add_argument("--epochs", type=int, default=4, help="epochs to run")
    chaos.add_argument(
        "--seed",
        type=int,
        default=None,
        help="chaos seed (default: 0, or the --schedule file's own seed)",
    )
    chaos.add_argument(
        "--schedule",
        dest="schedule_path",
        default=None,
        help="load the chaos schedule from this JSON file",
    )
    chaos.add_argument(
        "--standard",
        action="store_true",
        help="use the built-in standard schedule: 2 SIGKILLs, one SIGSTOP "
        "pause, one partition window, one 20%% loss window",
    )
    chaos.add_argument(
        "--kill",
        action="append",
        dest="kills",
        metavar="NODE:AT[:RESTART]",
        help="SIGKILL the node AT seconds after the barrier, respawn it "
        "RESTART seconds later (repeatable; default restart 0.5)",
    )
    chaos.add_argument(
        "--pause",
        action="append",
        dest="pauses",
        metavar="NODE:AT[:DURATION]",
        help="SIGSTOP the node AT seconds after the barrier, SIGCONT it "
        "DURATION seconds later (repeatable; default duration 1.0)",
    )
    chaos.add_argument(
        "--loss",
        action="append",
        dest="losses",
        metavar="PROB:START:END",
        help="probabilistic frame-loss window on the node wire clocks "
        "(repeatable)",
    )
    chaos.add_argument(
        "--transport",
        choices=("unix", "tcp"),
        default="unix",
        help="socket family for the node mesh (default: unix)",
    )
    chaos.add_argument(
        "--runtime-dir",
        default=None,
        help="directory for sockets, configs and node logs "
        "(default: a fresh temporary directory)",
    )
    chaos.add_argument(
        "--output",
        default=".",
        help="directory for the CHAOS_<seed>.json verdict artifact(s)",
    )
    chaos.add_argument(
        "--no-artifact", action="store_true", help="do not write verdict files"
    )
    chaos.add_argument(
        "--epoch-timeout",
        type=float,
        default=15.0,
        help="wall-clock budget per epoch in seconds (default: 15)",
    )
    chaos.add_argument(
        "--epoch-interval",
        type=float,
        default=1.0,
        help="pause between epochs; pacing lets respawned processes rejoin "
        "live (default: 1.0)",
    )
    chaos.add_argument(
        "--epoch-resyncs",
        type=int,
        default=3,
        help="node-side resyncs (re-JOIN + re-offer CERT) per epoch before "
        "a node gives up (default: 3)",
    )
    chaos.add_argument(
        "--gateway-port",
        type=int,
        default=None,
        help="serve a gateway front on this port during the run "
        "(0 = ephemeral); certified epochs are published to it and its "
        "/healthz reflects the chaos run",
    )
    chaos.add_argument(
        "--soak",
        action="store_true",
        help="loop freshly-seeded iterations of the schedule until "
        "--soak-budget is spent",
    )
    chaos.add_argument(
        "--soak-budget",
        type=float,
        default=120.0,
        help="soak wall-clock budget in seconds (default: 120)",
    )
    chaos.add_argument("--quiet", action="store_true", help="suppress progress lines")

    gateway = subparsers.add_parser(
        "gateway",
        help="serve the oracle to HTTP/WebSocket clients (certificate stream, "
        "queries, tick ingestion, /metrics)",
    )
    gateway.add_argument(
        "--workload",
        choices=sorted(SERVICE_WORKLOADS),
        default="bitcoin",
        help="base workload feeding epochs when too few client ticks are "
        "pending (default: bitcoin)",
    )
    gateway.add_argument("--epochs", type=int, default=10, help="epochs to serve")
    gateway.add_argument("--n", type=int, default=7, help="oracle network size")
    gateway.add_argument(
        "--engine",
        choices=SERVICE_ENGINES,
        default="fast",
        help="epoch execution engine (default: fast — the gateway is the "
        "serving layer; parity/cluster harnesses cover the others)",
    )
    gateway.add_argument("--seed", type=int, default=0)
    gateway.add_argument(
        "--churn", type=int, default=0, help="nodes offline per epoch (<= t)"
    )
    gateway.add_argument("--host", default="127.0.0.1", help="bind host")
    gateway.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral, printed)"
    )
    gateway.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="per-subscriber send-queue bound; overflow evicts the "
        "subscriber (default: 64)",
    )
    gateway.add_argument(
        "--history-limit",
        type=int,
        default=1024,
        help="certificate-index bound for /certs queries (default: 1024)",
    )
    gateway.add_argument(
        "--epoch-interval",
        type=float,
        default=1.0,
        help="pause between epochs in seconds (default: 1.0)",
    )
    gateway.add_argument(
        "--epsilon", type=float, default=None, help="override the workload's epsilon"
    )
    gateway.add_argument(
        "--delta-max", type=float, default=None, help="override the workload's Delta"
    )
    gateway.add_argument("--max-rounds", type=int, default=6)
    gateway.add_argument("--quiet", action="store_true", help="suppress progress lines")

    loadgen = subparsers.add_parser(
        "loadgen",
        help="load-test the gateway with concurrent WebSocket subscribers "
        "and tick publishers",
    )
    loadgen.add_argument(
        "--workload",
        choices=sorted(SERVICE_WORKLOADS),
        default="bitcoin",
        help="workload for the self-hosted gateway (default: bitcoin)",
    )
    loadgen.add_argument(
        "--engine",
        choices=SERVICE_ENGINES,
        default="fast",
        help="service engine for the self-hosted gateway (default: fast)",
    )
    loadgen.add_argument("--n", type=int, default=7, help="oracle network size")
    loadgen.add_argument("--epochs", type=int, default=3, help="epochs to serve")
    loadgen.add_argument(
        "--subscribers",
        type=int,
        default=1000,
        help="healthy WebSocket subscribers (default: 1000)",
    )
    loadgen.add_argument(
        "--stalled",
        type=int,
        default=0,
        help="additional subscribers that never read (eviction load)",
    )
    loadgen.add_argument(
        "--publishers",
        type=int,
        default=0,
        help="concurrent tick publishers (default: 0)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="gateway per-subscriber queue bound (default: 64)",
    )
    loadgen.add_argument(
        "--json", dest="json_path", help="write the full load report as JSON"
    )
    loadgen.add_argument(
        "--histogram",
        dest="histogram_path",
        help="write the delivery-latency histogram artifact to this path",
    )
    loadgen.add_argument(
        "--max-lost",
        type=int,
        default=0,
        help="tolerated certificates lost by non-evicted subscribers "
        "before exiting 1 (default: 0 — strict zero-loss)",
    )
    loadgen.add_argument("--quiet", action="store_true", help="suppress progress lines")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    rows = list_presets(scale=args.scale)
    width = max(len(name) for name, _d, _c in rows)
    print(f"{'preset'.ljust(width)}  cells  description")
    for name, description, count in rows:
        print(f"{name.ljust(width)}  {count:>5}  {description}")
    print()
    print(_render_protocol_table())
    return 0


def _render_protocol_table() -> str:
    """The registered protocol runners, one line each (registry-driven)."""
    from repro.protocols.registry import list_protocols

    runners = list_protocols()
    width = max(len(runner.name) for runner in runners)
    lines = [f"{'protocol'.ljust(width)}  agreement     description"]
    for runner in runners:
        lines.append(
            f"{runner.name.ljust(width)}  {runner.agreement:<12}  {runner.description}"
        )
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.metric not in TABLE_METRICS:
        raise ConfigurationError(
            f"unknown metric {args.metric!r} (known: {', '.join(TABLE_METRICS)})"
        )
    sweep = preset(args.name, scale=args.scale)
    cells = sweep.cells()
    if args.dry_run:
        print(f"# sweep {sweep.name}: {len(cells)} cells ({args.scale} scale)")
        for index, spec in enumerate(cells):
            print(
                f"  [{index + 1:>3}] {spec.label:<16} kind={spec.kind} n={spec.n} "
                f"testbed={spec.testbed} seed={spec.seed} hash={spec.spec_hash()}"
            )
        return 0
    executor = SweepExecutor(
        cache_dir=None if args.no_cache else args.cache_dir,
        max_workers=args.workers,
        parallel=False if args.serial else None,
        chunk_size=args.chunk,
    )
    if args.quiet:
        executor.progress = lambda message: None
    result = executor.run(sweep, force=args.force)
    fresh = len(result) - result.cached_count
    print(f"# sweep {result.name}: {len(result)} cells ({result.cached_count} cached, {fresh} computed)")
    collector = result.to_collector()
    if collector.records:
        print(collector.render_table(args.metric))
    else:  # workload-analysis sweeps have no protocol table; dump metrics
        for cell in result:
            print(f"## {cell.label} ({cell.spec_hash})")
            print(json.dumps(cell.metrics, indent=2, sort_keys=True))
    if args.json_path:
        print(f"wrote {result.write_json(args.json_path)}")
    if args.csv_path:
        print(f"wrote {result.write_csv(args.csv_path)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = ScenarioSpec(
        protocol=args.protocol,
        n=args.n,
        epsilon=args.epsilon,
        rho0=args.rho0,
        delta_max=args.delta_max,
        max_rounds=args.max_rounds,
        testbed=args.testbed,
        workload=args.workload,
        delta=args.delta,
        centre=args.centre,
        adversary=args.adversary,
        num_byzantine=args.num_byzantine,
        seed=args.seed,
    )
    executor = SweepExecutor(cache_dir=None, progress=lambda message: None)
    cell = executor.run_one(spec)
    print(json.dumps(cell.as_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_REGRESSION_THRESHOLD,
        compare_results,
        compare_to_baseline,
        comparison_failed,
        load_baseline,
        load_comparable,
        render_markdown_table,
        run_suite,
        write_bench,
    )
    from repro.perf.profiling import render_attribution

    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    # Validate comparison inputs before the (slow) suite so bad paths fail fast.
    baseline = load_baseline(args.baseline_path) if args.baseline_path else None
    old = load_comparable(args.compare_path) if args.compare_path else None
    threshold = (
        args.regression_threshold
        if args.regression_threshold is not None
        else DEFAULT_REGRESSION_THRESHOLD
    )
    if not 0.0 <= threshold < 1.0:
        raise ConfigurationError(
            f"--regression-threshold must be in [0, 1), got {threshold}"
        )
    results = run_suite(
        quick=args.quick,
        names=args.scenarios,
        verify=not args.skip_reference,
        profile=args.profile,
        progress=progress,
    )
    extra_sections = None
    if args.sharding_table:
        from repro.perf import render_sharding_table, sharding_comparison

        table = sharding_comparison(progress=progress)
        extra_sections = {"sharding_comparison": table}
        print(render_sharding_table(table))
    for result in results:
        entry = result.as_dict()
        fast_eps = entry.get("fast_events_per_sec")
        line = (
            f"{result.name}: {result.events:,} events, "
            f"fast {entry['fast_seconds']:.2f}s"
            + (f" ({fast_eps:,.0f} events/sec)" if fast_eps else "")
        )
        if result.reference is not None:
            line += (
                f", reference {entry['reference_seconds']:.2f}s, "
                f"speedup {entry['speedup']:.2f}x, "
                f"identical={result.equivalent}"
            )
        print(line)
        if result.profile is not None:
            print(render_attribution(result.name, result.profile))
    if not args.no_artifact:
        path = write_bench(
            results, output_dir=args.output, quick=args.quick, extra=extra_sections
        )
        print(f"wrote {path}")
    exit_code = 0
    if old is not None:
        rows = compare_results(results, old, threshold=threshold)
        table = render_markdown_table(rows)
        print(table)
        if args.summary_path:
            with open(args.summary_path, "a", encoding="utf-8") as handle:
                handle.write(f"### perf delta vs {args.compare_path}\n\n{table}\n")
        if comparison_failed(rows):
            print(
                "perf comparison failed (regression beyond "
                f"{threshold:.0%} or fingerprint mismatch)",
                file=sys.stderr,
            )
            exit_code = 1
    if baseline is not None:
        checks = compare_to_baseline(results, baseline)
        failed = False
        for check in checks:
            print(check.describe())
            failed = failed or not check.ok
        if failed:
            print("perf regression detected (see above)", file=sys.stderr)
            exit_code = 1
    return exit_code


def _cmd_faults(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.faults.campaign import (
        campaign,
        list_campaigns,
        replay_bundle_report,
        run_campaign,
    )

    if args.list:
        rows = list_campaigns()
        width = max(len(name) for name, _d, _c in rows)
        print(f"{'campaign'.ljust(width)}  cells  description")
        for name, description, count in rows:
            print(f"{name.ljust(width)}  {count:>5}  {description}")
        print()
        print(_render_protocol_table())
        return 0

    if args.bundle_path:
        report = replay_bundle_report(args.bundle_path)
        print(json.dumps(report.verdict.as_dict(), indent=2, sort_keys=True))
        print(report.describe(), file=sys.stderr)
        # Non-zero exactly when the bundle is stale: the recorded violation
        # (same monitor, same detail) must reproduce on the recorded engine.
        return 0 if report.reproduced else 1

    selected = campaign(args.campaign)
    cells = selected.cells()
    if args.dry_run:
        print(f"# campaign {selected.name}: {len(cells)} cells x 2 engines")
        for index, spec in enumerate(cells):
            print(
                f"  [{index + 1:>3}] {spec.label:<16} protocol={spec.protocol} "
                f"n={spec.n} seed={spec.seed} hash={spec.spec_hash()}"
            )
        return 0

    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    bundle_dir = None if args.no_artifact else str(Path(args.output) / "bundles")
    result = run_campaign(selected, bundle_dir=bundle_dir, progress=progress)
    summary = result.summary
    print(
        f"# campaign {result.name}: {summary['cells']} cells x 2 engines — "
        f"{summary['ok']} ok, {summary['stalled']} stalled (liveness waived), "
        f"{summary['violations']} violations, "
        f"{summary['engine_mismatches']} engine mismatches"
    )
    for verdict in result.verdicts:
        if verdict.status in ("violation", "engine-mismatch"):
            entry = verdict.as_dict()
            print(f"!! {entry['label']} protocol={entry['protocol']} n={entry['n']}: {entry['status']}")
            if "violation" in entry:
                print(f"   {entry['violation']['monitor']}: {entry['violation']['detail']}")
            if "bundle" in entry:
                print(f"   repro bundle: {entry['bundle']}")
    if not args.no_artifact:
        path = result.write_json(str(Path(args.output) / f"FAULTS_{result.name}.json"))
        print(f"wrote {path}")
    return 0 if result.passed else 1


def _cmd_sharded_smoke(args: argparse.Namespace) -> int:
    import time

    from repro.faults.campaign import run_cell_engine
    from repro.protocols.sharded_delphi import sharded_topology_of

    spec = ScenarioSpec(
        protocol="sharded-delphi",
        n=args.n,
        epsilon=args.epsilon,
        delta_max=args.delta_max,
        testbed=args.testbed,
        seed=args.seed,
        name=f"sharded-smoke-n{args.n}",
        extras={"group_size": args.group_size},
    )
    topology = sharded_topology_of(spec)
    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    if progress:
        progress(
            f"sharded-smoke: n={spec.n} groups={topology.num_groups} "
            f"(size {args.group_size}) on the fast engine"
        )
    started = time.perf_counter()
    outcome = run_cell_engine(spec, "fast")
    elapsed = time.perf_counter() - started
    verdict = {
        "schema": "repro-sharded-smoke/1",
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash(),
        "n": spec.n,
        "num_groups": topology.num_groups,
        "group_size": args.group_size,
        "status": outcome.status,
        "wall_seconds": round(elapsed, 3),
        "margins": outcome.margins,
        "margin_ratios": outcome.margin_ratios,
    }
    if outcome.violation is not None:
        verdict["violation"] = outcome.violation
    if outcome.projection is not None:
        projection = dict(outcome.projection)
        # Per-node maps and id lists bloat the artifact at n=1000; keep counts.
        outputs = projection.pop("outputs", {})
        values = [float(value) for value in outputs.values()]
        projection["decided"] = len(projection.pop("decided", outputs))
        projection["honest"] = len(projection.pop("honest", ()))
        projection["byzantine"] = len(projection.pop("byzantine", ()))
        if values:
            projection["output_spread"] = max(values) - min(values)
        verdict["metrics"] = projection
    if args.reference:
        if progress:
            progress("sharded-smoke: replaying on the reference engine")
        reference = run_cell_engine(spec, "reference")
        verdict["engines_equivalent"] = (
            outcome.comparable() == reference.comparable()
        )
        if not verdict["engines_equivalent"]:
            verdict["status"] = "engine-mismatch"
    print(json.dumps(verdict, indent=2, sort_keys=True))
    if args.output:
        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(verdict, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    return 0 if verdict["status"] == "ok" else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.faults.search import fuzz_schedules, load_corpus, save_corpus

    corpus = [] if args.no_corpus else load_corpus(args.corpus)
    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    result = fuzz_schedules(
        protocols=tuple(args.protocols) if args.protocols else ("delphi", "fin"),
        budget=args.budget,
        seed=args.seed,
        min_margin=args.min_margin,
        engine=args.engine,
        corpus=corpus,
        progress=progress,
    )
    print(
        f"# fuzz seed={result.seed}: {result.runs} runs "
        f"({result.cache_hits} cache hits, {result.shrink_runs} shrink runs), "
        f"{len(result.violations)} violations, "
        f"{len(result.corpus_candidates)} corpus candidates"
    )
    for protocol in result.protocols:
        best = result.best_margins.get(protocol, {})
        base = result.baseline_margins.get(protocol, {})
        for channel in sorted(best):
            marker = (
                " (beats baseline)"
                if channel in base and best[channel] < base[channel]
                else ""
            )
            print(f"  {protocol}/{channel}: best {best[channel]:.6g}{marker}")
    if not args.no_artifact:
        path = result.write_json(
            str(Path(args.output) / f"FUZZ_seed{result.seed}.json")
        )
        print(f"wrote {path}")
    known_hashes = {str(entry["spec_hash"]) for entry in corpus}
    if args.update_corpus and result.corpus_candidates:
        merged = corpus + result.corpus_candidates
        path = save_corpus(args.corpus, merged)
        fresh = [
            c for c in result.corpus_candidates if c["spec_hash"] not in known_hashes
        ]
        print(f"promoted {len(fresh)} new schedules into {path}")
        known_hashes.update(str(entry["spec_hash"]) for entry in merged)
    # A violation whose shrunk schedule is not already a committed corpus
    # entry is new and un-triaged: fail so CI surfaces it.
    new_violations = [
        v for v in result.violations if v["spec_hash"] not in known_hashes
    ]
    if new_violations:
        for violation in new_violations:
            print(
                f"!! new invariant violation: {violation['violation']['monitor']} "
                f"({violation['spec_hash']}) — triage and commit to the corpus",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.oracle.service import build_service

    service = build_service(
        args.workload,
        args.n,
        engine=args.engine,
        seed=args.seed,
        churn=args.churn,
        parity=not args.no_parity,
        strict_parity=args.strict_parity,
        epsilon=args.epsilon,
        delta_max=args.delta_max,
        max_rounds=args.max_rounds,
        latency_seconds=args.latency,
        epoch_timeout=args.epoch_timeout,
    )
    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    result = service.serve(args.epochs, progress=progress)
    epochs_per_sec = result.epochs_per_sec or 0.0
    certs_per_sec = result.certs_per_sec or 0.0
    parity_checked = sum(1 for report in result.reports if report.parity_ok is not None)
    print(
        f"# serve {result.workload} engine={result.engine} n={result.n}: "
        f"{result.epochs} epochs in {result.wall_seconds:.2f}s "
        f"({epochs_per_sec:.2f} epochs/sec, {certs_per_sec:.2f} certs/sec, "
        f"{result.events_processed} events)"
    )
    print(
        f"# chain: {result.chain_entries} valid certificates, "
        f"{result.chain_validations} validations; parity replays: "
        f"{parity_checked}/{result.epochs}"
    )
    for report in result.reports:
        line = (
            f"  epoch {report.epoch:>3}: value={report.value:.6g} "
            f"signers={report.certificate.signer_count}"
        )
        if report.offline_nodes:
            line += f" offline={list(report.offline_nodes)}"
        if report.parity is not None:
            line += f" parity={report.parity}"
        print(line)
    if args.json_path:
        from pathlib import Path

        path = Path(args.json_path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile
    from pathlib import Path

    from repro.oracle.cluster import (
        ClusterConfig,
        ClusterSupervisor,
        CrashPlan,
        build_cluster_config,
    )

    if args.config_path is not None:
        config = ClusterConfig.load(args.config_path)
    else:
        runtime_dir = args.runtime_dir or tempfile.mkdtemp(prefix="repro-cluster-")
        config = build_cluster_config(
            args.workload,
            args.n,
            epochs=args.epochs,
            seed=args.seed,
            transport=args.transport,
            runtime_dir=runtime_dir,
            host=args.host,
            base_port=args.base_port,
            epsilon=args.epsilon,
            delta_max=args.delta_max,
            max_rounds=args.max_rounds,
            epoch_timeout=args.epoch_timeout,
            epoch_interval=args.epoch_interval,
        )
    if args.write_config:
        path = config.write(args.write_config)
        print(f"wrote {path}")
        return 0
    crash = None
    if args.crash_node is not None:
        crash = CrashPlan(node=args.crash_node, epoch=args.crash_epoch)
    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    supervisor = ClusterSupervisor(
        config, spawn=not args.no_spawn, crash=crash, progress=progress
    )
    report = supervisor.run()
    print(
        f"# cluster {config.workload} n={config.n}: "
        f"{len(report['epochs'])} epochs in {report['wall_seconds']:.2f}s, "
        f"{report['chain_entries']} chain entries, "
        f"{len(report['restarts'])} crash-recoveries"
    )
    for entry in report["epochs"]:
        print(
            f"  epoch {entry['epoch']:>3}: value={entry['value']:.6g} "
            f"signers={entry['signers']} certs_from={entry['cert_senders']}"
        )
    if args.json_path:
        path = Path(args.json_path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_cluster_node(args: argparse.Namespace) -> int:
    import asyncio

    from repro.oracle.cluster import ClusterConfig, run_node

    config = ClusterConfig.load(args.config)
    committed = asyncio.run(run_node(config, args.node_id, log=sys.stderr))
    print(
        f"node {args.node_id}: committed {len(committed)} epochs "
        f"{sorted(committed)}",
        file=sys.stderr,
    )
    return 0


def _parse_timed_spec(text: str, flag: str, fields: int) -> List[float]:
    """Parse a ``NODE:AT[:EXTRA]`` / ``PROB:START:END`` style CLI value."""
    parts = text.split(":")
    if not 2 <= len(parts) <= fields:
        raise ConfigurationError(
            f"malformed --{flag} {text!r} (expected colon-separated numbers)"
        )
    try:
        return [float(part) for part in parts]
    except ValueError:
        raise ConfigurationError(
            f"malformed --{flag} {text!r} (expected colon-separated numbers)"
        )


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile
    import time
    from pathlib import Path

    from repro.faults.spec import LossSpec
    from repro.net.chaos import WireFaults
    from repro.oracle.chaos import (
        ChaosSchedule,
        KillSpec,
        PauseSpec,
        run_chaos,
        standard_schedule,
        write_verdict,
    )
    from repro.oracle.cluster import build_cluster_config

    if args.n < 4:
        raise ConfigurationError(f"chaos runs need n >= 4, got {args.n}")
    if args.schedule_path is not None:
        schedule = ChaosSchedule.load(args.schedule_path)
    elif args.standard:
        schedule = standard_schedule(args.n)
    else:
        kills = tuple(
            KillSpec(int(f[0]), f[1], *(f[2:3]))
            for f in (_parse_timed_spec(s, "kill", 3) for s in args.kills or ())
        )
        pauses = tuple(
            PauseSpec(int(f[0]), f[1], *(f[2:3]))
            for f in (_parse_timed_spec(s, "pause", 3) for s in args.pauses or ())
        )
        losses = tuple(
            LossSpec(start=f[1], end=f[2], probability=f[0])
            for f in (_parse_timed_spec(s, "loss", 3) for s in args.losses or ())
        )
        schedule = ChaosSchedule(
            kills=kills, pauses=pauses, wire=WireFaults(losses=losses)
        )
    seed = args.seed if args.seed is not None else schedule.seed
    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    runtime_root = Path(args.runtime_dir or tempfile.mkdtemp(prefix="repro-chaos-"))
    started = time.monotonic()
    failed: List[int] = []
    iteration = 0
    while True:
        iter_schedule = schedule.with_seed(seed + iteration)
        iter_dir = runtime_root / f"iter-{iteration}" if args.soak else runtime_root
        config = build_cluster_config(
            args.workload,
            args.n,
            epochs=args.epochs,
            seed=iter_schedule.seed,
            transport=args.transport,
            runtime_dir=iter_dir,
            epoch_timeout=args.epoch_timeout,
            epoch_interval=args.epoch_interval,
        )
        config.epoch_resyncs = args.epoch_resyncs
        gateway = None
        if args.gateway_port is not None:
            from repro.oracle.gateway import build_gateway

            gateway = build_gateway(
                args.workload,
                args.n,
                engine="fast",
                seed=iter_schedule.seed,
                port=args.gateway_port,
            )
        verdict = run_chaos(
            config, iter_schedule, progress=progress, gateway=gateway
        )
        certified = sum(
            1 for entry in verdict["epochs"] if entry["outcome"] == "certified"
        )
        skipped = [
            entry for entry in verdict["epochs"] if entry["outcome"] == "skipped"
        ]
        print(
            f"# chaos seed={verdict['seed']} n={verdict['n']} "
            f"workload={verdict['workload']}: "
            f"{certified}/{verdict['epochs_planned']} epochs certified, "
            f"{len(skipped)} skipped, {len(verdict['violations'])} violations, "
            f"ok={verdict['ok']}"
        )
        for entry in skipped:
            print(f"  epoch {entry['epoch']}: skipped ({entry['reason']})")
        for violation in verdict["violations"]:
            print(f"!! {violation['monitor']}: {violation['detail']}")
        if not args.no_artifact:
            print(f"wrote {write_verdict(args.output, verdict)}")
        if not verdict["ok"]:
            failed.append(verdict["seed"])
        iteration += 1
        if not args.soak or time.monotonic() - started >= args.soak_budget:
            break
    if args.soak:
        print(
            f"# soak: {iteration} iterations in "
            f"{time.monotonic() - started:.1f}s, {len(failed)} failed"
            + (f" (seeds {failed})" if failed else "")
        )
    return 1 if failed else 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.oracle.gateway import build_gateway

    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))

    async def serve() -> None:
        gateway = build_gateway(
            args.workload,
            args.n,
            engine=args.engine,
            seed=args.seed,
            churn=args.churn,
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            history_limit=args.history_limit,
            epsilon=args.epsilon,
            delta_max=args.delta_max,
            max_rounds=args.max_rounds,
        )
        host, port = await gateway.start()
        print(f"# gateway {args.workload} n={args.n} listening on {host}:{port}")
        try:
            await gateway.run_epochs(
                args.epochs, interval=args.epoch_interval, progress=progress
            )
            metrics = gateway.metrics()
            print(
                f"# served {metrics['certs_published']} certificates to "
                f"{metrics['subscribers_total']} subscribers "
                f"({metrics['evictions']} evictions, "
                f"{metrics['send_drops']} dropped sends)"
            )
        finally:
            await gateway.close()

    asyncio.run(serve())
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.oracle.loadgen import run_loadgen, write_histogram

    progress = None if args.quiet else (lambda message: print(message, file=sys.stderr))
    report = run_loadgen(
        workload=args.workload,
        engine=args.engine,
        n=args.n,
        epochs=args.epochs,
        subscribers=args.subscribers,
        stalled=args.stalled,
        publishers=args.publishers,
        seed=args.seed,
        queue_limit=args.queue_limit,
        progress=progress,
    )
    latency = report.latency_summary()
    certs_per_sec = report.certs_per_sec
    print(
        f"# loadgen {report.workload} n={report.n}: {report.epochs} epochs to "
        f"{report.subscribers} subscribers (+{report.stalled} stalled, "
        f"{report.publishers} publishers) in {report.wall_seconds:.2f}s"
    )
    print(
        f"# delivered {report.certs_received}/{report.certs_expected} certificates "
        + (f"({certs_per_sec:,.0f} certs/sec) " if certs_per_sec else "")
        + f"lost={report.certs_lost} evictions={report.evictions} "
        f"drops={report.send_drops}"
    )
    if latency["samples"]:
        print(
            f"# delivery latency: p50 {latency['p50_ms']:.2f}ms, "
            f"p99 {latency['p99_ms']:.2f}ms, max {latency['max_ms']:.2f}ms "
            f"({latency['samples']} samples)"
        )
    if report.publishers:
        print(
            f"# ticks: {report.ticks_accepted} accepted, "
            f"{report.epochs_from_ticks}/{report.epochs} epochs fed from ticks"
        )
    if args.json_path:
        from pathlib import Path

        path = Path(args.json_path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    if args.histogram_path:
        write_histogram(report, args.histogram_path)
        print(f"wrote {args.histogram_path}")
    if report.certs_lost > args.max_lost:
        print(
            f"loadgen failed: {report.certs_lost} certificates lost by "
            f"non-evicted subscribers (tolerated: {args.max_lost})",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "list-scenarios":
            return _cmd_list(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "perf":
            return _cmd_perf(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "sharded-smoke":
            return _cmd_sharded_smoke(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "cluster-node":
            return _cmd_cluster_node(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "gateway":
            return _cmd_gateway(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
    except ReproError as error:
        # Covers configuration mistakes and designed runtime failures such
        # as the perf suite's EquivalenceError — clean message, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2
