"""Result containers and artifact writers for experiment sweeps.

A :class:`CellResult` pairs one scenario spec with the metrics its cell
function produced (plus bookkeeping: spec hash, wall-clock, cache status).
A :class:`SweepResult` is the ordered collection for a whole sweep and knows
how to

* bridge into the benchmark harness's :class:`~repro.testbed.metrics.MetricsCollector`
  (so refactored benchmarks keep emitting the same tables), and
* serialise to the JSON/CSV artifact formats ``benchmarks/bench_common.py``
  consumers already parse (one JSON object / CSV row per cell, metrics
  flattened next to the spec fields).

Example
-------
>>> result = executor.run(sweep)                       # doctest: +SKIP
>>> result.write_json("out/sweep.json")                # doctest: +SKIP
>>> collector = result.to_collector()                  # doctest: +SKIP
>>> print(collector.render_table("runtime_seconds"))   # doctest: +SKIP
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.testbed.metrics import MetricsCollector

from repro.experiments.spec import ScenarioSpec

#: Metrics every protocol cell reports, in the order CSV columns prefer.
_CORE_METRICS = (
    "runtime_seconds",
    "megabytes",
    "message_count",
    "output_spread",
    "validity_margin",
)


@dataclass
class CellResult:
    """One computed (or cache-loaded) experiment cell."""

    spec: ScenarioSpec
    spec_hash: str
    metrics: Dict[str, Any]
    elapsed_seconds: float = 0.0
    cached: bool = False

    @property
    def label(self) -> str:
        """The series label of the underlying spec."""
        return self.spec.label

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict: spec + metrics + bookkeeping."""
        return {
            "spec_hash": self.spec_hash,
            "cached": self.cached,
            "elapsed_seconds": self.elapsed_seconds,
            "spec": self.spec.to_dict(),
            "metrics": self.metrics,
        }


@dataclass
class SweepResult:
    """All cell results of one sweep, in deterministic grid order."""

    name: str
    results: List[CellResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def cached_count(self) -> int:
        """How many cells were served from the result cache."""
        return sum(1 for result in self.results if result.cached)

    def metrics_by_hash(self) -> Dict[str, Dict[str, Any]]:
        """Map spec hash -> metrics (for result-equality comparisons)."""
        return {result.spec_hash: result.metrics for result in self.results}

    def series(self, label: str) -> List[CellResult]:
        """All cells of one series label, ordered by system size."""
        return sorted(
            (result for result in self.results if result.label == label),
            key=lambda result: result.spec.n,
        )

    def metric(self, label: str, n: int, name: str) -> Any:
        """One metric value of one (series, n) cell."""
        for result in self.series(label):
            if result.spec.n == n:
                return result.metrics[name]
        raise KeyError(f"no cell for series {label!r} at n={n}")

    # ------------------------------------------------------------------
    def to_collector(self, experiment: Optional[str] = None) -> MetricsCollector:
        """Bridge protocol-cell results into a :class:`MetricsCollector`.

        The collector renders the same protocol-by-n tables the benchmark
        suite has always emitted, so refactored benchmarks stay drop-in
        compatible with ``bench_common.print_report``.
        """
        collector = MetricsCollector(experiment or self.name)
        for result in self.results:
            if result.spec.kind != "protocol":
                continue
            metrics = result.metrics
            collector.add_run(
                protocol=result.label,
                n=result.spec.n,
                runtime_seconds=float(metrics["runtime_seconds"]),
                megabytes=float(metrics["megabytes"]),
                message_count=int(metrics["message_count"]),
                output_spread=float(metrics["output_spread"]),
                validity_margin=float(metrics["validity_margin"]),
                delta=float(result.spec.delta),
                seed=float(result.spec.seed),
            )
        return collector

    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        """Flat per-cell rows: spec fields + scalar metrics."""
        rows: List[Dict[str, Any]] = []
        for result in self.results:
            row: Dict[str, Any] = {"label": result.label, "spec_hash": result.spec_hash}
            row.update(result.spec.to_dict())
            # Flatten scalar extras (e.g. fig7's heatmap coordinates) so CSV
            # consumers keep the cell's grid position.
            for key, value in row.pop("extras", {}).items():
                if isinstance(value, (int, float, str, bool)):
                    row.setdefault(key, value)
            for key, value in result.metrics.items():
                if isinstance(value, (int, float, str, bool)) or value is None:
                    row[key] = value
            rows.append(row)
        return rows

    def write_json(self, path: str) -> str:
        """Write the full sweep (specs + complete metrics) as JSON."""
        _ensure_parent(path)
        payload = {
            "sweep": self.name,
            "cells": [result.as_dict() for result in self.results],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def write_csv(self, path: str) -> str:
        """Write one CSV row per cell (scalar metrics only)."""
        _ensure_parent(path)
        rows = self.rows()
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        # Keep the headline metrics adjacent for eyeballing.
        for name in reversed(_CORE_METRICS):
            if name in columns:
                columns.remove(name)
                columns.insert(2, name)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            writer.writerows(rows)
        return path


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
