"""Weighted aggregation of checkpoint weights (Algorithm 2, lines 13-24).

After every BinAA instance terminates, a Delphi node turns the agreed-upon
checkpoint weights into its output in two steps:

1. **Per-level aggregation** — each level ``l`` gets a representative value
   ``V_l`` (the weight-weighted average of its checkpoint values) and a
   level weight ``w_l`` (the maximum checkpoint weight at that level).  If
   every checkpoint at the level has weight 0, the level falls back to
   ``(V_l, w_l) = (v_i, eps_prime)`` so the final division is always
   defined.

2. **Cross-level aggregation** — the level weights are differenced,
   ``w'_0 = w_0^2`` and ``w'_l = w_l * |w_l - w_{l-1}|``, which zeroes out
   the contribution of every level above the first level whose weight
   saturates at 1 (the "differentiation" trick of Section III-B.2), and the
   output is the ``w'``-weighted average of the ``V_l``.

All functions are pure so the validity and agreement lemmas (IV.2-IV.4) can
be property-tested directly on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ProtocolError


@dataclass(frozen=True)
class LevelAggregate:
    """Per-level aggregation result: representative value and weight."""

    level: int
    value: float
    weight: float
    fallback: bool

    def as_tuple(self) -> tuple:
        return (self.value, self.weight)


def aggregate_level(
    level: int,
    checkpoint_values: Dict[int, float],
    weights: Dict[int, float],
    own_input: float,
    eps_prime: float,
) -> LevelAggregate:
    """Aggregate one level's checkpoint weights (Algorithm 2, lines 14-20).

    Parameters
    ----------
    level:
        Level index (used only for reporting).
    checkpoint_values:
        Mapping of checkpoint index to its value ``mu^l_k``.
    weights:
        Mapping of checkpoint index to its agreed weight ``w^l_k``; indices
        missing from this mapping are treated as weight 0.
    own_input:
        The node's own input ``v_i`` (the fallback representative value).
    eps_prime:
        The fallback weight when every checkpoint has weight 0.
    """
    positive = {
        index: weight
        for index, weight in weights.items()
        if weight > 0.0 and index in checkpoint_values
    }
    if not positive:
        return LevelAggregate(level=level, value=own_input, weight=eps_prime, fallback=True)
    total_weight = sum(positive.values())
    weighted_value = sum(
        weight * checkpoint_values[index] for index, weight in positive.items()
    )
    value = weighted_value / total_weight
    # The weighted average lies in the convex hull of the positive-weight
    # checkpoints by construction; only float underflow (denormal weights
    # whose products round to zero) can push it out, so clamp it back.
    hull = [checkpoint_values[index] for index in positive]
    value = min(max(value, min(hull)), max(hull))
    return LevelAggregate(
        level=level,
        value=value,
        weight=max(positive.values()),
        fallback=False,
    )


def cross_level_weights(level_weights: Sequence[float]) -> List[float]:
    """Differenced level weights ``w'_l`` (Algorithm 2, lines 21-23).

    ``w'_0 = w_0^2`` and ``w'_l = w_l * |w_l - w_{l-1}|`` for ``l >= 1``.
    """
    if not level_weights:
        raise ProtocolError("at least one level is required")
    primed = [level_weights[0] ** 2]
    for index in range(1, len(level_weights)):
        primed.append(level_weights[index] * abs(level_weights[index] - level_weights[index - 1]))
    return primed


def cross_level_output(aggregates: Sequence[LevelAggregate]) -> float:
    """Final Delphi output: the ``w'``-weighted average of level values
    (Algorithm 2, line 24).

    Raises
    ------
    ProtocolError
        If the sum of differenced weights is zero, which Theorem IV.1 shows
        cannot happen when the honest range is within ``delta_max``; hitting
        it indicates a mis-configuration (``delta_max`` too small).
    """
    if not aggregates:
        raise ProtocolError("at least one level aggregate is required")
    primed = cross_level_weights([aggregate.weight for aggregate in aggregates])
    total = sum(primed)
    if total <= 0.0:
        raise ProtocolError(
            "sum of cross-level weights is zero; the honest input range likely "
            "exceeds the configured delta_max"
        )
    weighted = sum(
        weight * aggregate.value for weight, aggregate in zip(primed, aggregates)
    )
    return weighted / total


def round_to_epsilon(value: float, epsilon: float) -> float:
    """Round ``value`` to the nearest integer multiple of ``epsilon``.

    Used by the DORA extension (Section V): after approximate agreement,
    honest outputs land on at most two adjacent multiples of ``epsilon``,
    which is what makes ``t + 1`` matching signatures collectable.
    """
    if epsilon <= 0:
        raise ProtocolError("epsilon must be positive")
    return round(value / epsilon) * epsilon
