"""The paper's primary contribution: the Delphi protocol and its DORA
oracle-reporting extension."""

from repro.core.checkpoints import CheckpointId, LevelState
from repro.core.aggregation import (
    LevelAggregate,
    aggregate_level,
    cross_level_output,
    cross_level_weights,
)
from repro.core.bundling import Bundle, LevelBundle, decode_bundle, encode_bundle
from repro.core.delphi import DelphiNode, DelphiOutput
from repro.core.dora import DoraCertificate, DoraNode

__all__ = [
    "Bundle",
    "CheckpointId",
    "DelphiNode",
    "DelphiOutput",
    "DoraCertificate",
    "DoraNode",
    "LevelAggregate",
    "LevelBundle",
    "LevelState",
    "aggregate_level",
    "cross_level_output",
    "cross_level_weights",
    "decode_bundle",
    "encode_bundle",
]
