"""DORA extension: attested oracle reporting on top of Delphi (Section V).

The Distributed Oracle Agreement (DORA) problem asks the oracle network to
hand the blockchain a *single attested value* within (a relaxation of) the
range of honest inputs.  Delphi solves it with one extra, computation-light
step:

1. run Delphi to reach ``epsilon``-approximate agreement;
2. round the output to the nearest integer multiple of ``epsilon`` — honest
   outputs now land on at most two adjacent multiples, so at least one
   multiple is reported by ``t + 1`` honest nodes;
3. broadcast a signature on the rounded value, wait for ``t + 1`` signatures
   on the same value, aggregate them and submit the aggregate to the SMR
   (blockchain) channel.

Because no value outside the two adjacent multiples can collect ``t + 1``
signatures, the SMR channel receives at most two candidate reports, and the
first one ordered is consumed — with zero per-node signature *verifications*
during agreement, which is the computational advantage over Chainlink's OCR
and the original DORA protocol that Table III reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.analysis.parameters import DelphiParameters
from repro.core.aggregation import round_to_epsilon
from repro.core.delphi import DelphiNode
from repro.crypto.signatures import AggregateSignature, Signature, SignatureScheme
from repro.net.message import Message
from repro.protocols.base import Outbound, ProtocolNode

PROTOCOL = "dora"
REPORT = "REPORT"


@dataclass(frozen=True)
class DoraCertificate:
    """An attested oracle report: the agreed value plus its aggregate
    signature from ``t + 1`` distinct oracles."""

    value: float
    aggregate: AggregateSignature

    @property
    def signer_count(self) -> int:
        """Number of distinct oracles that attested this value."""
        return len(self.aggregate.signers)


class DoraNode(ProtocolNode):
    """Delphi plus the rounding/attestation step that solves DORA.

    Parameters
    ----------
    node_id, params, value:
        As for :class:`~repro.core.delphi.DelphiNode`.
    scheme:
        The shared :class:`~repro.crypto.signatures.SignatureScheme`; every
        node of the same oracle network must be constructed with the same
        scheme object (it plays the role of the network's PKI).
    """

    def __init__(
        self,
        node_id: int,
        params: DelphiParameters,
        value: float,
        scheme: SignatureScheme,
    ) -> None:
        super().__init__(node_id, params.n, params.t)
        if scheme.num_nodes != params.n:
            raise ConfigurationError(
                "signature scheme size does not match the oracle network size"
            )
        self.params = params
        self.scheme = scheme
        self.delphi = DelphiNode(node_id=node_id, params=params, value=value)
        self.rounded_value: Optional[float] = None
        self._signatures: Dict[float, Dict[int, Signature]] = {}
        self._report_sent = False

    # ------------------------------------------------------------------
    def on_start(self) -> List[Outbound]:
        return self.delphi.on_start()

    def on_message(self, sender: int, message: Message) -> List[Outbound]:
        if self.has_output:
            return []
        if message.protocol == PROTOCOL:
            return self._on_report(sender, message)
        out = self.delphi.on_message(sender, message)
        out.extend(self._maybe_report())
        return out

    # ------------------------------------------------------------------
    def _maybe_report(self) -> List[Outbound]:
        """Once Delphi decides, round and broadcast our signed report."""
        if self._report_sent or not self.delphi.has_output:
            return []
        self._report_sent = True
        value = self.delphi.output_value
        assert value is not None
        self.rounded_value = round_to_epsilon(value, self.params.epsilon)
        signature = self.scheme.sign(self.node_id, self.rounded_value)
        self._record(self.node_id, self.rounded_value, signature)
        payload = [self.rounded_value, signature]
        out = [self.broadcast(Message(PROTOCOL, REPORT, None, payload))]
        out.extend(self._maybe_certify())
        return out

    def _on_report(self, sender: int, message: Message) -> List[Outbound]:
        payload = message.payload
        if not isinstance(payload, (list, tuple)) or len(payload) != 2:
            return []
        value, signature = payload
        if not isinstance(signature, Signature) or signature.signer != sender:
            return []
        value = self._validated_report_value(value)
        if value is None:
            return []
        if not self.scheme.verify(value, signature):
            return []
        self._record(sender, value, signature)
        return self._maybe_certify()

    def _validated_report_value(self, value: object) -> Optional[float]:
        """Sanitise a Byzantine-controlled report value.

        Only finite real numbers that sit on the epsilon rounding grid can
        ever collect ``t + 1`` honest signatures, so anything else is
        rejected *before* touching it — ``float(value)`` on an arbitrary
        payload (a string, a list) raises and would crash an honest node.
        """
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        value = float(value)
        if not math.isfinite(value):
            return None
        if round_to_epsilon(value, self.params.epsilon) != value:
            return None
        return value

    def _record(self, sender: int, value: float, signature: Signature) -> None:
        self._signatures.setdefault(value, {})[sender] = signature

    def _maybe_certify(self) -> List[Outbound]:
        """Decide once some rounded value has ``t + 1`` signatures.

        Certification waits for the local Delphi instance to finish so that
        this node keeps contributing its BinAA echoes until every round is
        complete (stopping earlier could stall slower honest nodes).
        """
        if self.has_output or not self.delphi.has_output:
            return []
        for value, signatures in self._signatures.items():
            if len(signatures) >= self.t + 1:
                aggregate = self.scheme.aggregate(value, list(signatures.values()))
                self._decide(DoraCertificate(value=value, aggregate=aggregate))
                break
        return []

    # ------------------------------------------------------------------
    def processing_cost(self, message: Message) -> float:
        """One signature verification per received report (symmetric-key
        cost in this construction, unlike the pairing-heavy baselines)."""
        if message.protocol == PROTOCOL and message.mtype == REPORT:
            return 1.0
        return 0.0

    @property
    def certificate(self) -> Optional[DoraCertificate]:
        """The attested report once decided, else ``None``."""
        return self.output if self.has_output else None
