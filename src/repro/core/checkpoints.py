"""Checkpoint and level bookkeeping for Delphi.

Delphi divides the input space into *checkpoints*: at level ``l`` the
checkpoints are the integer multiples of the separator ``rho_l = 2^l rho0``.
Every checkpoint has its own BinAA instance, and a node inputs 1 to the two
checkpoints closest to its own value and 0 to every other checkpoint
(Algorithm 2, lines 10-11).

Running a literal BinAA instance per checkpoint over the whole system range
``[s, e]`` would be infeasible, and Section III-C of the paper bundles the
messages of the (overwhelmingly many) all-zero checkpoints together.  This
module implements the state-level counterpart of that optimisation:

* checkpoints a node has explicit information about (its own 1-inputs, plus
  any checkpoint another node has diverged on) each get their own
  :class:`~repro.protocols.binaa.BinAAEngine`;
* all remaining checkpoints at a level share a single *default engine* whose
  input is 0.  Because every honest node inputs 0 to those checkpoints, the
  shared engine's history is identical to what each individual instance
  would have seen, so sharing is lossless.  When divergent information about
  a specific checkpoint arrives, that checkpoint is *split*: the default
  engine is cloned (carrying the full shared history) and becomes the
  checkpoint's explicit engine.

The explicit set changes only on splits (rare) but is consulted on every
delivered bundle (hot), so the sorted projections the receive path needs —
the exclude tuple and the index-sorted engine list — are cached here and
invalidated on mutation, and termination is memoised once reached (engines
never lose their output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.protocols.binaa import BinAAEngine, SubMessage

#: A checkpoint is identified by its level and its integer index ``k``
#: (the checkpoint's value is ``k * rho_l``).
CheckpointId = Tuple[int, int]


@dataclass
class LevelState:
    """All BinAA state a single node holds for one Delphi level.

    Attributes
    ----------
    level:
        Level index ``l``.
    separator:
        Checkpoint spacing ``rho_l`` at this level.
    default_engine:
        The shared engine representing every checkpoint without explicit
        state (all honest inputs 0).
    explicit:
        Engines for checkpoints with explicit state, keyed by checkpoint
        index.  Mutate only through :meth:`register_explicit` /
        :meth:`split` so the sorted-projection caches stay coherent.
    own_checkpoints:
        The indices this node input 1 to.
    """

    level: int
    separator: float
    default_engine: BinAAEngine
    explicit: Dict[int, BinAAEngine] = field(default_factory=dict)
    own_checkpoints: Tuple[int, ...] = ()
    _exclude_cache: Optional[Tuple[int, ...]] = field(
        default=None, repr=False, compare=False
    )
    _sorted_engines_cache: Optional[List[Tuple[int, BinAAEngine]]] = field(
        default=None, repr=False, compare=False
    )
    _terminated_memo: bool = field(default=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def is_explicit(self, index: int) -> bool:
        """Whether checkpoint ``index`` has its own engine at this node."""
        return index in self.explicit

    def exclude_key(self) -> Tuple[int, ...]:
        """Sorted tuple of explicit checkpoint indices (cached)."""
        key = self._exclude_cache
        if key is None:
            key = self._exclude_cache = tuple(sorted(self.explicit))
        return key

    def explicit_indices(self) -> List[int]:
        """Sorted list of explicit checkpoint indices."""
        return list(self.exclude_key())

    def sorted_engines(self) -> List[Tuple[int, BinAAEngine]]:
        """The explicit engines as index-sorted ``(index, engine)`` pairs
        (cached; the receive path walks this once per default block)."""
        pairs = self._sorted_engines_cache
        if pairs is None:
            explicit = self.explicit
            pairs = self._sorted_engines_cache = [
                (index, explicit[index]) for index in self.exclude_key()
            ]
        return pairs

    def _invalidate(self) -> None:
        self._exclude_cache = None
        self._sorted_engines_cache = None

    def register_explicit(self, index: int, engine: BinAAEngine) -> BinAAEngine:
        """Install a pre-built explicit engine for checkpoint ``index``."""
        if index in self.explicit:
            raise ProtocolError(
                f"checkpoint {index} at level {self.level} is already explicit"
            )
        self.explicit[index] = engine
        self._invalidate()
        if engine.output is None:
            self._terminated_memo = False
        return engine

    def split(self, index: int) -> BinAAEngine:
        """Split checkpoint ``index`` out of the default block.

        The new explicit engine is a clone of the default engine, which
        carries the full message history the checkpoint shared with the
        default block up to this point.  Splitting an already explicit
        checkpoint is an error (callers check first).
        """
        return self.register_explicit(index, self.default_engine.clone())

    def ensure_explicit(self, index: int) -> BinAAEngine:
        """Return the explicit engine for ``index``, splitting it if needed."""
        engine = self.explicit.get(index)
        if engine is not None:
            return engine
        return self.split(index)

    # ------------------------------------------------------------------
    def all_engines(self) -> Iterable[BinAAEngine]:
        """Every engine at this level (default first, then explicit)."""
        yield self.default_engine
        for _index, engine in self.sorted_engines():
            yield engine

    @property
    def terminated(self) -> bool:
        """Whether every engine at this level has completed all rounds.

        Memoised once true: engines never lose their output, so the scan
        runs at most once per termination (not once per event).
        """
        if self._terminated_memo:
            return True
        if self.default_engine.output is None:
            return False
        for engine in self.explicit.values():
            if engine.output is None:
                return False
        self._terminated_memo = True
        return True

    def checkpoint_weights(self) -> Dict[int, float]:
        """Final weights of the explicit checkpoints (only meaningful once
        :attr:`terminated` is true)."""
        weights: Dict[int, float] = {}
        for index, engine in self.explicit.items():
            if engine.output is not None:
                weights[index] = engine.output
        return weights

    @property
    def default_weight(self) -> Optional[float]:
        """Final weight of the shared default block (0 in every honest run)."""
        return self.default_engine.output

    def checkpoint_value(self, index: int) -> float:
        """Value ``mu^l_k = k * rho_l`` of checkpoint ``index``."""
        return index * self.separator
