"""The Delphi protocol node (Algorithm 2).

A Delphi node runs one BinAA instance per checkpoint per level, inputs 1 to
the two checkpoints closest to its own value at every level and 0 to every
other checkpoint, and — once every instance has completed its ``r_max``
iterations — aggregates the agreed checkpoint weights into its output with
the multi-level weighted average of :mod:`repro.core.aggregation`.

Two paper optimisations are built in:

* **Message bundling (Section III-C)** — all sub-protocol traffic a node
  produces while processing one event is sent as a single physical message
  (:mod:`repro.core.bundling`), and the all-zero region of checkpoints at
  each level shares a single BinAA engine (:mod:`repro.core.checkpoints`),
  so both the message count and the per-message size match the paper's
  ``~O(n^2)`` per-round communication.
* **Lazy checkpoint splitting** — a checkpoint leaves the shared all-zero
  block only when divergent information about it arrives, carrying the
  shared history with it, which is exactly equivalent to having run a
  dedicated instance from the start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.analysis.parameters import DelphiParameters
from repro.core.aggregation import LevelAggregate, aggregate_level, cross_level_output
from repro.core.bundling import Bundle, decode_bundle, encode_bundle_sized
from repro.core.checkpoints import LevelState
from repro.net.message import Message
from repro.protocols.base import Outbound, ProtocolNode
from repro.protocols.binaa import BinAAEngine, SubMessage

PROTOCOL = "delphi"
BUNDLE = "BUNDLE"


@dataclass(frozen=True)
class DelphiOutput:
    """A Delphi node's decision together with its per-level breakdown."""

    value: float
    level_aggregates: Tuple[LevelAggregate, ...]

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.value


class DelphiNode(ProtocolNode):
    """One node of the Delphi protocol.

    Parameters
    ----------
    node_id:
        This node's identifier.
    params:
        Static protocol configuration (see
        :class:`~repro.analysis.parameters.DelphiParameters`).
    value:
        The node's input ``v_i`` (its oracle/sensor measurement).
    scalar_output:
        When true (the default) the node's :attr:`output` is the plain float
        the application consumes; when false it is a :class:`DelphiOutput`
        carrying the per-level breakdown used by the analysis benchmarks.
    """

    def __init__(
        self,
        node_id: int,
        params: DelphiParameters,
        value: float,
        scalar_output: bool = True,
    ) -> None:
        super().__init__(node_id, params.n, params.t)
        self.params = params
        self.value = float(value)
        self.scalar_output = scalar_output
        self._levels: Dict[int, LevelState] = {}
        self._started = False
        self._round_trips = 0
        # Engines still running across all levels; decremented whenever a
        # handled sub-message completes an engine, so the per-event "has
        # everything terminated?" check is a single integer comparison.
        self._pending_engines = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _new_engine(self) -> BinAAEngine:
        engine = BinAAEngine(n=self.n, t=self.t, rounds=self.params.rounds)
        # Completion feeds the pending-engine counter (split clones inherit
        # the callback), so termination checks never rescan collections.
        engine.on_complete = self._engine_completed
        return engine

    def _engine_completed(self) -> None:
        self._pending_engines -= 1

    def _setup_levels(self) -> Bundle:
        bundle = Bundle()
        for level in self.params.levels:
            separator = self.params.separator(level)
            own = tuple(self.params.nearest_checkpoints(level, self.value))
            state = LevelState(
                level=level,
                separator=separator,
                default_engine=self._new_engine(),
                own_checkpoints=own,
            )
            self._levels[level] = state
            self._pending_engines += 1  # the default engine
            # Own checkpoints are explicit from the start with input 1.
            for index in own:
                state.register_explicit(index, self._new_engine())
                self._pending_engines += 1
            exclude = state.exclude_key()
            for index in own:
                subs = state.explicit[index].start(1)
                bundle.add_explicit(level, exclude, index, subs)
            default_subs = state.default_engine.start(0)
            bundle.add_default(level, exclude, default_subs)
        return bundle

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def on_start(self) -> List[Outbound]:
        if self._started:
            raise ProtocolError("Delphi node already started")
        self._started = True
        bundle = self._setup_levels()
        return self._emit(bundle)

    def on_message(self, sender: int, message: Message) -> List[Outbound]:
        if message.protocol != PROTOCOL or message.mtype != BUNDLE:
            return []
        if not self._started or self._has_output:
            return []
        # A broadcast bundle is delivered to all n nodes; decode it once and
        # memoise the result on the (immutable) message.  Receivers only read
        # the decoded structure, so sharing it is safe.  ``False`` marks a
        # malformed (Byzantine) payload so it is not re-parsed per receiver.
        incoming = getattr(message, "_bundle_memo", None)
        if incoming is None:
            try:
                incoming = decode_bundle(message.payload)
            except ProtocolError:
                incoming = False
            object.__setattr__(message, "_bundle_memo", incoming)
        if incoming is False:
            # Malformed (Byzantine) bundle: discard entirely.
            return []
        outgoing = self._process_bundle(sender, incoming)
        if not self._pending_engines and not self._has_output:
            self._maybe_decide()
        if outgoing is None:
            return []
        return self._emit(outgoing)

    # ------------------------------------------------------------------
    # Bundle processing
    # ------------------------------------------------------------------
    def _process_bundle(self, sender: int, incoming: Bundle) -> Optional[Bundle]:
        # Decoded bundles iterate levels and explicit checkpoints in sorted
        # order and carry their precomputed divergent/exclude projections
        # (see decode_bundle), so this path performs no per-delivery sorts.
        # The outgoing bundle is allocated lazily: the overwhelming majority
        # of deliveries emit nothing (``None`` is returned instead).
        outgoing: Optional[Bundle] = None
        levels = self._levels
        for entry in incoming.levels.values():
            level = entry.level
            state = levels.get(level)
            if state is None:
                continue
            explicit_map = state.explicit

            # 1. Split every checkpoint the sender no longer covers with its
            #    default block, so our shared block's history stays uniform.
            #    One C-level subset test skips the whole scan in the common
            #    case where every divergent checkpoint is already explicit.
            if not entry.divergent_set <= explicit_map.keys():
                for index in entry.divergent:
                    if index not in explicit_map:
                        engine = state.split(index)
                        if engine.output is None:
                            self._pending_engines += 1

            exclude_now = state.exclude_key()

            # 2. Explicit sub-messages go to their dedicated engines (the
            #    decoder pre-flattened them into index-sorted pairs).
            for index, sub in entry.explicit_pairs:
                emitted = explicit_map[index].handle(sender, sub)
                if emitted:
                    if outgoing is None:
                        outgoing = Bundle()
                    outgoing.add_explicit(level, exclude_now, index, emitted)

            # 3. Default sub-messages go to our default engine and to every
            #    explicit engine the sender still covers with its default.
            default_subs = entry.default
            if default_subs:
                default_engine = state.default_engine
                for sub in default_subs:
                    emitted = default_engine.handle(sender, sub)
                    if emitted:
                        if outgoing is None:
                            outgoing = Bundle()
                        outgoing.add_default(level, exclude_now, emitted)
                excluded_by_sender = entry.exclude_set
                for index, engine in state.sorted_engines():
                    if index in excluded_by_sender:
                        continue
                    for sub in default_subs:
                        emitted = engine.handle(sender, sub)
                        if emitted:
                            if outgoing is None:
                                outgoing = Bundle()
                            outgoing.add_explicit(level, exclude_now, index, emitted)
        return outgoing

    def _emit(self, bundle: Bundle) -> List[Outbound]:
        if not bundle.levels:
            # The common mid-round case: nothing to say this step.
            return []
        payload, payload_bits = encode_bundle_sized(bundle)
        if not payload:
            return []
        self._round_trips += 1
        # The codec accumulated the payload's exact wire size while
        # encoding, so the message is constructed pre-sized.
        return [
            self.broadcast(Message.sized(PROTOCOL, BUNDLE, None, payload, payload_bits))
        ]

    # ------------------------------------------------------------------
    # Aggregation (Algorithm 2, lines 13-24)
    # ------------------------------------------------------------------
    def _maybe_decide(self) -> None:
        # O(1) incremental check; the full terminated scan below runs once,
        # as a belt-and-braces guard on the counter bookkeeping.
        if self._pending_engines or self._has_output:
            return
        if not all(state.terminated for state in self._levels.values()):
            return
        aggregates = []
        for level in self.params.levels:
            state = self._levels[level]
            weights = state.checkpoint_weights()
            checkpoint_values = {
                index: state.checkpoint_value(index) for index in weights
            }
            aggregates.append(
                aggregate_level(
                    level=level,
                    checkpoint_values=checkpoint_values,
                    weights=weights,
                    own_input=self.value,
                    eps_prime=self.params.eps_prime,
                )
            )
        value = cross_level_output(aggregates)
        if self.scalar_output:
            self._decide(value)
        else:
            self._decide(DelphiOutput(value=value, level_aggregates=tuple(aggregates)))

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and benchmarks
    # ------------------------------------------------------------------
    def level_state(self, level: int) -> LevelState:
        """The per-level state (for white-box tests)."""
        if level not in self._levels:
            raise ConfigurationError(f"unknown level {level}")
        return self._levels[level]

    @property
    def levels(self) -> Dict[int, LevelState]:
        """All per-level state, keyed by level index."""
        return self._levels

    @property
    def output_value(self) -> Optional[float]:
        """The scalar output regardless of ``scalar_output`` mode."""
        if not self.has_output:
            return None
        if isinstance(self.output, DelphiOutput):
            return self.output.value
        return float(self.output)
