"""Bundled message encoding for Delphi (Section III-C).

Running one BinAA instance per checkpoint naively would require a separate
physical message per checkpoint per round.  Delphi instead bundles all of a
node's sub-protocol traffic produced in one processing step into a single
physical message.  Per level, a bundle carries:

* ``explicit`` — sub-messages for checkpoints the sender tracks explicitly,
  keyed by checkpoint index;
* ``default`` — sub-messages of the sender's shared all-zero block, which
  apply to every checkpoint the sender does *not* track explicitly;
* ``exclude`` — the sender's current explicit checkpoint set, so the
  receiver knows exactly which checkpoints the ``default`` entry does not
  cover (this is what makes out-of-order delivery safe).

Because the explicit set only ever contains checkpoints near some node's
input (at most ``min(2 delta / rho_l + 2, 2n)`` per level), the encoded
bundle stays small and the measured per-round communication reproduces the
paper's ``O(n^2 min(delta / rho_0, n l_max))`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.protocols.binaa import SubMessage


@dataclass
class LevelBundle:
    """One level's share of a bundled Delphi message."""

    level: int
    exclude: Tuple[int, ...] = ()
    default: List[SubMessage] = field(default_factory=list)
    explicit: Dict[int, List[SubMessage]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        """Whether this level contributes nothing to the bundle."""
        return not self.default and not self.explicit


@dataclass
class Bundle:
    """A full bundled Delphi message: one :class:`LevelBundle` per level."""

    levels: Dict[int, LevelBundle] = field(default_factory=dict)

    def level(self, level: int, exclude: Sequence[int]) -> LevelBundle:
        """Get (or create) the bundle entry for ``level`` with the sender's
        current explicit set ``exclude``."""
        entry = self.levels.get(level)
        if entry is None:
            entry = self.levels[level] = LevelBundle(
                level=level, exclude=tuple(sorted(exclude))
            )
        return entry

    def add_default(self, level: int, exclude: Sequence[int], subs: Sequence[SubMessage]) -> None:
        """Append default-block sub-messages for ``level``."""
        self.level(level, exclude).default.extend(subs)

    def add_explicit(
        self, level: int, exclude: Sequence[int], index: int, subs: Sequence[SubMessage]
    ) -> None:
        """Append explicit sub-messages for checkpoint ``index`` at ``level``."""
        entry = self.level(level, exclude)
        entry.explicit.setdefault(index, []).extend(subs)

    @property
    def empty(self) -> bool:
        """Whether the bundle carries no sub-messages at all."""
        return all(entry.empty for entry in self.levels.values())


def _encode_subs(subs: Sequence[SubMessage]) -> List[List]:
    return [[mtype, round_number, value] for mtype, round_number, value in subs]


def _decode_subs(raw: Sequence) -> List[SubMessage]:
    subs: List[SubMessage] = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise ProtocolError(f"malformed sub-message {item!r}")
        subs.append((str(item[0]), int(item[1]), float(item[2])))
    return subs


def encode_bundle(bundle: Bundle) -> List[List]:
    """Encode a bundle into the JSON-like payload carried by one message.

    Layout: ``[[level, [exclude...], [default subs...],
    [[index, [subs...]], ...]], ...]``.
    """
    payload: List[List] = []
    for level in sorted(bundle.levels):
        entry = bundle.levels[level]
        if entry.empty:
            continue
        payload.append(
            [
                level,
                list(entry.exclude),
                _encode_subs(entry.default),
                [
                    [index, _encode_subs(subs)]
                    for index, subs in sorted(entry.explicit.items())
                ],
            ]
        )
    return payload


def decode_bundle(payload: Sequence) -> Bundle:
    """Decode a bundle payload produced by :func:`encode_bundle`.

    Raises
    ------
    ProtocolError
        If the payload is structurally malformed (Byzantine senders may
        craft such payloads; the caller discards the whole message).
    """
    if not isinstance(payload, (list, tuple)):
        raise ProtocolError("bundle payload must be a list")
    bundle = Bundle()
    for raw_level in payload:
        if not isinstance(raw_level, (list, tuple)) or len(raw_level) != 4:
            raise ProtocolError(f"malformed level entry {raw_level!r}")
        level = int(raw_level[0])
        exclude = tuple(int(i) for i in raw_level[1])
        entry = bundle.level(level, exclude)
        entry.default.extend(_decode_subs(raw_level[2]))
        for raw_explicit in raw_level[3]:
            if not isinstance(raw_explicit, (list, tuple)) or len(raw_explicit) != 2:
                raise ProtocolError(f"malformed explicit entry {raw_explicit!r}")
            index = int(raw_explicit[0])
            entry.explicit.setdefault(index, []).extend(_decode_subs(raw_explicit[1]))
    return bundle
