"""Bundled message encoding for Delphi (Section III-C).

Running one BinAA instance per checkpoint naively would require a separate
physical message per checkpoint per round.  Delphi instead bundles all of a
node's sub-protocol traffic produced in one processing step into a single
physical message.  Per level, a bundle carries:

* ``explicit`` — sub-messages for checkpoints the sender tracks explicitly,
  keyed by checkpoint index;
* ``default`` — sub-messages of the sender's shared all-zero block, which
  apply to every checkpoint the sender does *not* track explicitly;
* ``exclude`` — the sender's current explicit checkpoint set, so the
  receiver knows exactly which checkpoints the ``default`` entry does not
  cover (this is what makes out-of-order delivery safe).

Because the explicit set only ever contains checkpoints near some node's
input (at most ``min(2 delta / rho_l + 2, 2n)`` per level), the encoded
bundle stays small and the measured per-round communication reproduces the
paper's ``O(n^2 min(delta / rho_0, n l_max))`` bits.

Codec hot-path design.  A bundle is encoded once per processing step and
decoded once per physical message (the decode is memoised on the message),
but with ~n^2 messages per round the codec used to dominate after the event
loop got cheap.  The wire payload is therefore *flat tuples* instead of
nested lists:

* sub-message triples are already tuples — encoding reuses them zero-copy,
  and encoded sub-sequences are interned per content key, so the recurring
  fragments (a level's default block, one checkpoint's echoes) are shared
  objects across bundles with their size computed exactly once;
* :func:`encode_bundle_sized` returns the payload *and* its wire size in
  bits, accumulated from the interned fragment sizes, so the enclosing
  :class:`~repro.net.message.Message` never walks the payload at all (the
  number it produces is exactly ``estimate_size_bits(payload)``);
* :func:`decode_bundle` normalises as it parses — levels and explicit
  checkpoints come out iteration-sorted, the union of ``exclude`` and
  explicit keys (``divergent``) and the exclude membership set are
  precomputed — so the n receivers of a broadcast share one sorted
  structure instead of re-sorting per delivery.

Tuples and lists are charged identically by
:func:`~repro.net.message.estimate_size_bits` (8 bits of framing plus the
items), so the flat-tuple payload is byte-identical to the old nested-list
payload for wire-size accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ProtocolError
from repro.net.message import int_size_bits, submessage_payload_bits
from repro.protocols.binaa import SubMessage

#: Interned encoded sub-message sequences: content key -> (payload fragment,
#: fragment size in bits).  Honest runs produce few distinct sequences
#: (mtypes x rounds x dyadic values), so the memo stays tiny; the cap only
#: guards against adversarial floods of unique triples.
_SUBS_INTERN: Dict[Tuple[SubMessage, ...], Tuple[Tuple[SubMessage, ...], int]] = {}
_SUBS_INTERN_CAP = 65536


def _encode_subs(subs: Sequence[SubMessage]) -> Tuple[Tuple[SubMessage, ...], int]:
    """Encode a sub-message sequence, returning ``(fragment, size_bits)``.

    The fragment is interned per content so repeated sequences share one
    tuple object and one size computation.
    """
    key = tuple(subs)
    entry = _SUBS_INTERN.get(key)
    if entry is None:
        if len(_SUBS_INTERN) >= _SUBS_INTERN_CAP:
            _SUBS_INTERN.clear()
        bits = 8
        for sub in key:
            bits += submessage_payload_bits(sub)
        entry = _SUBS_INTERN[key] = (key, bits)
    return entry


@dataclass
class LevelBundle:
    """One level's share of a bundled Delphi message.

    ``divergent`` and ``exclude_set`` are receiver-independent projections
    precomputed by :func:`decode_bundle` (the sorted union of ``exclude``
    and the explicit keys, and the exclude membership set); they are unset
    on locally built outgoing bundles.
    """

    level: int
    exclude: Tuple[int, ...] = ()
    default: List[SubMessage] = field(default_factory=list)
    explicit: Dict[int, List[SubMessage]] = field(default_factory=dict)
    divergent: Tuple[int, ...] = ()
    divergent_set: frozenset = frozenset()
    exclude_set: frozenset = frozenset()
    explicit_pairs: Tuple[Tuple[int, SubMessage], ...] = ()

    @property
    def empty(self) -> bool:
        """Whether this level contributes nothing to the bundle."""
        return not self.default and not self.explicit


@dataclass
class Bundle:
    """A full bundled Delphi message: one :class:`LevelBundle` per level."""

    levels: Dict[int, LevelBundle] = field(default_factory=dict)

    def level(self, level: int, exclude: Sequence[int]) -> LevelBundle:
        """Get (or create) the bundle entry for ``level`` with the sender's
        current explicit set ``exclude``.

        A tuple ``exclude`` is trusted to be pre-sorted (the level-state
        cache hands those out); any other sequence is sorted defensively.
        """
        entry = self.levels.get(level)
        if entry is None:
            if type(exclude) is not tuple:
                exclude = tuple(sorted(exclude))
            entry = self.levels[level] = LevelBundle(level=level, exclude=exclude)
        return entry

    def add_default(self, level: int, exclude: Sequence[int], subs: Sequence[SubMessage]) -> None:
        """Append default-block sub-messages for ``level``."""
        self.level(level, exclude).default.extend(subs)

    def add_explicit(
        self, level: int, exclude: Sequence[int], index: int, subs: Sequence[SubMessage]
    ) -> None:
        """Append explicit sub-messages for checkpoint ``index`` at ``level``."""
        entry = self.level(level, exclude)
        existing = entry.explicit.get(index)
        if existing is None:
            entry.explicit[index] = list(subs)
        else:
            existing.extend(subs)

    @property
    def empty(self) -> bool:
        """Whether the bundle carries no sub-messages at all."""
        return all(entry.empty for entry in self.levels.values())


def encode_bundle_sized(bundle: Bundle) -> Tuple[Tuple, int]:
    """Encode ``bundle`` and return ``(payload, payload_size_bits)``.

    Layout (all tuples): ``((level, (exclude...), (default subs...),
    ((index, (subs...)), ...)), ...)``.  The size is accumulated from the
    interned fragment sizes and equals ``estimate_size_bits(payload)``
    exactly — so the carrying message can be constructed pre-sized.
    """
    payload: List[Tuple] = []
    bits = 8  # outer container framing
    levels = bundle.levels
    for level in sorted(levels):
        entry = levels[level]
        explicit = entry.explicit
        if not entry.default and not explicit:
            continue
        default_fragment, default_bits = _encode_subs(entry.default)
        explicit_items: List[Tuple[int, Tuple[SubMessage, ...]]] = []
        explicit_bits = 8  # explicit-list framing
        for index in sorted(explicit):
            subs_fragment, subs_bits = _encode_subs(explicit[index])
            explicit_items.append((index, subs_fragment))
            explicit_bits += 8 + int_size_bits(index) + subs_bits
        exclude = entry.exclude
        exclude_bits = 8
        for index in exclude:
            exclude_bits += int_size_bits(index)
        payload.append((level, exclude, default_fragment, tuple(explicit_items)))
        bits += (
            8  # level-entry framing
            + int_size_bits(level)
            + exclude_bits
            + default_bits
            + explicit_bits
        )
    return tuple(payload), bits


def encode_bundle(bundle: Bundle) -> Tuple:
    """Encode a bundle into the flat-tuple payload carried by one message."""
    return encode_bundle_sized(bundle)[0]


def _decode_subs(raw: Sequence) -> List[SubMessage]:
    subs: List[SubMessage] = []
    append = subs.append
    for item in raw:
        # Fast path: honest senders transmit exact (str, int, float) tuples,
        # which are reused zero-copy.
        if (
            type(item) is tuple
            and len(item) == 3
            and type(item[0]) is str
            and type(item[1]) is int
            and type(item[2]) is float
        ):
            append(item)
            continue
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise ProtocolError(f"malformed sub-message {item!r}")
        append((str(item[0]), int(item[1]), float(item[2])))
    return subs


def decode_bundle(payload: Sequence) -> Bundle:
    """Decode a bundle payload produced by :func:`encode_bundle`.

    The decoded bundle is normalised for the receive hot path: levels and
    explicit checkpoints iterate in sorted order, and each level carries its
    precomputed ``divergent`` union and ``exclude_set``.

    Raises
    ------
    ProtocolError
        If the payload is structurally malformed (Byzantine senders may
        craft such payloads; the caller discards the whole message).
    """
    if not isinstance(payload, (list, tuple)):
        raise ProtocolError("bundle payload must be a list")
    bundle = Bundle()
    levels = bundle.levels
    for raw_level in payload:
        if not isinstance(raw_level, (list, tuple)) or len(raw_level) != 4:
            raise ProtocolError(f"malformed level entry {raw_level!r}")
        level = int(raw_level[0])
        # Sort defensively: honest senders always transmit sorted excludes,
        # but the old codec normalised Byzantine ones too.
        exclude = tuple(sorted(int(i) for i in raw_level[1]))
        entry = bundle.level(level, exclude)
        entry.default.extend(_decode_subs(raw_level[2]))
        explicit = entry.explicit
        for raw_explicit in raw_level[3]:
            if not isinstance(raw_explicit, (list, tuple)) or len(raw_explicit) != 2:
                raise ProtocolError(f"malformed explicit entry {raw_explicit!r}")
            index = int(raw_explicit[0])
            decoded = _decode_subs(raw_explicit[1])
            existing = explicit.get(index)
            if existing is None:
                explicit[index] = decoded
            else:
                existing.extend(decoded)
    # Normalise for the per-delivery hot path: a broadcast is decoded once
    # and processed by n receivers, so sort and project here, not there.
    if len(levels) > 1 and list(levels) != sorted(levels):
        bundle.levels = {level: levels[level] for level in sorted(levels)}
    for entry in bundle.levels.values():
        explicit = entry.explicit
        if len(explicit) > 1 and list(explicit) != sorted(explicit):
            entry.explicit = {index: explicit[index] for index in sorted(explicit)}
        entry.exclude_set = frozenset(entry.exclude)
        entry.divergent_set = entry.exclude_set.union(entry.explicit)
        entry.divergent = tuple(sorted(entry.divergent_set))
        entry.explicit_pairs = tuple(
            (index, sub)
            for index, subs in entry.explicit.items()
            for sub in subs
        )
    return bundle
