"""The perf scenario basket: timed, equivalence-checked simulation runs.

Each :class:`PerfScenario` describes one simulation workload.  Running a
scenario executes it once per requested engine (``fast`` first, then
``reference``), with fresh, identically seeded networks and nodes per run,
and reduces every run to a canonical *fingerprint* — a SHA-256 over the
sorted-JSON projection of the protocol outputs, decision times, simulated
runtime, traffic totals and event count.  Identical fingerprints mean the
two engines produced byte-identical results; a mismatch raises
:class:`~repro.errors.EquivalenceError` (the fast path's correctness
guarantee is broken and the numbers would be meaningless).

The basket covers the paper's hot spots:

* ``delphi-n40-aws`` / ``delphi-n160-aws`` — Fig. 6a's AWS oracle sweep at
  a medium and the largest system size (the n=160 cell is the acceptance
  scenario for hot-path work);
* ``sharded-delphi-n1000`` — the two-level sharded variant at n=1000
  (groups of 32), the scale-out cell flat Delphi's O(n^2) broadcasts
  cannot reach (see :mod:`repro.perf.sharding` for the flat-vs-sharded
  comparison table);
* ``abraham-n40-aws`` — one round-heavy baseline protocol;
* ``oracle-smr-e3-n13-aws`` — three epochs of the end-to-end oracle
  network, including DORA attestation and the SMR channel;
* ``oracle-service-e4-n7-churn`` — four epochs of the epoch-pipelined
  oracle service (persistent PKI, epoch-tagged messages, rotating one-node
  churn, certificate-stream monitors) — the serving layer itself;
* ``oracle-gateway-n7`` — three epochs of the client-facing gateway
  streamed to 50 live WebSocket subscribers over real sockets.  The
  fingerprint covers the certified values and delivery totals (identical
  across engines); wall-clock delivery latency travels in the
  **non-fingerprinted** ``metrics`` side-channel, gated by the baseline's
  ``latency_ceilings_ms`` table rather than the equivalence check.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.analysis.parameters import derive_parameters
from repro.errors import ConfigurationError, EquivalenceError
from repro.experiments.cells import build_inputs, build_network
from repro.experiments.spec import ScenarioSpec
from repro.oracle.network import OracleNetwork
from repro.runner import ProtocolRunResult, run_abraham, run_delphi
from repro.sim.runtime import SimulationConfig
from repro.testbed.aws import AwsTestbed
from repro.workloads.bitcoin import BitcoinPriceFeed

#: Schema tag written into every BENCH artifact.
BENCH_SCHEMA = "repro-perf/1"


def _fingerprint(projection: Any) -> str:
    """SHA-256 over the canonical JSON of a result projection."""
    blob = json.dumps(projection, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _protocol_projection(result: ProtocolRunResult) -> Dict[str, Any]:
    return {
        "outputs": {str(k): v for k, v in sorted(result.outputs.items())},
        "runtime_seconds": result.runtime_seconds,
        "megabytes": result.total_megabytes,
        "message_count": result.message_count,
        "events_processed": result.events_processed,
    }


@dataclass(frozen=True)
class RunOutcome:
    """One engine's timed execution of a scenario."""

    engine: str
    wall_seconds: float
    events: int
    fingerprint: str


@dataclass(frozen=True)
class PerfScenario:
    """One entry of the perf basket.

    ``run`` executes the scenario under the given engine name and returns
    ``(events_processed, fingerprint_projection)`` — or a 3-tuple with a
    trailing ``metrics`` dict of wall-clock measurements (latency
    percentiles) that are reported in the artifact but deliberately **kept
    out of the fingerprint**, since wall time can never be byte-identical
    across engines.  The suite adds timing.  ``quick`` marks scenarios
    included in the CI smoke basket.
    """

    name: str
    description: str
    quick: bool
    run: Callable[[str], Tuple[int, Dict[str, Any]]]


# ----------------------------------------------------------------------
# Scenario implementations.


def _delphi_aws(n: int) -> Callable[[str], Tuple[int, Dict[str, Any]]]:
    def runner(engine: str) -> Tuple[int, Dict[str, Any]]:
        spec = ScenarioSpec(protocol="delphi", n=n, testbed="aws", seed=1)
        inputs = build_inputs(spec)
        network, compute = build_network(spec)
        params = derive_parameters(
            n=n,
            epsilon=spec.epsilon,
            rho0=spec.rho0,
            delta_max=spec.delta_max,
            max_rounds=spec.max_rounds,
        )
        result = run_delphi(
            params,
            inputs,
            network=network,
            compute=compute,
            config=SimulationConfig(engine=engine),
        )
        return result.events_processed, _protocol_projection(result)

    return runner


def _sharded_delphi_aws(
    n: int, group_size: int
) -> Callable[[str], Tuple[int, Dict[str, Any]]]:
    def runner(engine: str) -> Tuple[int, Dict[str, Any]]:
        from repro.protocols.sharded_delphi import sharded_parameters_of
        from repro.runner import run_sharded_delphi

        spec = ScenarioSpec(
            protocol="sharded-delphi",
            n=n,
            testbed="aws",
            seed=1,
            extras={"group_size": group_size},
        )
        inputs = build_inputs(spec)
        network, compute = build_network(spec)
        params = sharded_parameters_of(spec)
        result = run_sharded_delphi(
            params,
            inputs,
            network=network,
            compute=compute,
            config=SimulationConfig(engine=engine),
        )
        return result.events_processed, _protocol_projection(result)

    return runner


def _abraham_aws(n: int) -> Callable[[str], Tuple[int, Dict[str, Any]]]:
    def runner(engine: str) -> Tuple[int, Dict[str, Any]]:
        spec = ScenarioSpec(protocol="abraham", n=n, testbed="aws", seed=2)
        inputs = build_inputs(spec)
        network, compute = build_network(spec)
        result = run_abraham(
            n,
            inputs,
            epsilon=spec.epsilon,
            delta_max=spec.delta_max,
            rounds=spec.max_rounds,
            network=network,
            compute=compute,
            config=SimulationConfig(engine=engine),
        )
        return result.events_processed, _protocol_projection(result)

    return runner


def _oracle_smr(n: int, epochs: int) -> Callable[[str], Tuple[int, Dict[str, Any]]]:
    def runner(engine: str) -> Tuple[int, Dict[str, Any]]:
        params = derive_parameters(n=n, epsilon=2.0, rho0=10.0, delta_max=2000.0, max_rounds=6)
        testbed = AwsTestbed(num_nodes=n, seed=11)
        oracle = OracleNetwork(
            params=params, network_factory=testbed.network, compute=testbed.compute()
        )
        feed = BitcoinPriceFeed(seed=11)
        events = 0
        epochs_projection: List[Dict[str, Any]] = []
        for _epoch in range(epochs):
            measurements = feed.node_inputs(n)
            report = oracle.report_round(
                measurements, config=SimulationConfig(engine=engine)
            )
            events += report.events_processed
            epochs_projection.append(
                {
                    "value": report.value,
                    "runtime_seconds": report.runtime_seconds,
                    "megabytes": report.total_megabytes,
                    "honest_outputs": {
                        str(k): v for k, v in sorted(report.honest_outputs.items())
                    },
                }
            )
        chain = [
            [entry.position, entry.submitter, float(entry.payload.value), entry.valid]
            for entry in oracle.chain.entries
        ]
        projection = {
            "epochs": epochs_projection,
            "chain": chain,
            "validations": oracle.chain.validations,
        }
        return events, projection

    return runner


def _oracle_service(n: int, epochs: int) -> Callable[[str], Tuple[int, Dict[str, Any]]]:
    def runner(engine: str) -> Tuple[int, Dict[str, Any]]:
        from repro.oracle.service import build_service

        # Parity is off here because the suite itself runs the scenario on
        # both engines and fingerprints the results — the stronger check.
        service = build_service(
            "bitcoin", n, engine=engine, seed=7, churn=1, parity=False
        )
        result = service.serve(epochs)
        projection = {
            "reports": [report.as_dict() for report in result.reports],
            "chain_entries": result.chain_entries,
            "chain_validations": result.chain_validations,
        }
        return result.events_processed, projection

    return runner


def _oracle_gateway(
    n: int, epochs: int, subscribers: int
) -> Callable[[str], Tuple[int, Dict[str, Any], Dict[str, Any]]]:
    def runner(engine: str) -> Tuple[int, Dict[str, Any], Dict[str, Any]]:
        import asyncio

        from repro.oracle.gateway import build_gateway
        from repro.oracle.loadgen import run_loadgen_async

        async def drive():
            # Generous queue bound and no tick publishers: nothing
            # timing-dependent (evictions, tick-fed epochs) may leak into
            # the fingerprinted projection.
            gateway = build_gateway(
                "bitcoin", n, engine=engine, seed=7, queue_limit=4096
            )
            await gateway.start()
            try:
                report = await run_loadgen_async(
                    workload="bitcoin",
                    engine=engine,
                    n=n,
                    epochs=epochs,
                    subscribers=subscribers,
                    publishers=0,
                    gateway=gateway,
                )
                certificates = [
                    {key: value for key, value in entry.items() if key != "published_at"}
                    for entry in gateway.history(since=0, limit=epochs)
                ]
            finally:
                await gateway.close()
            return report, certificates

        report, certificates = asyncio.run(drive())
        projection = {
            "certificates": certificates,
            "subscribers": subscribers,
            "delivered": report.certs_received,
            "lost": report.certs_lost,
        }
        return report.certs_received, projection, report.latency_summary()

    return runner


#: The perf basket, in execution order.
SCENARIOS: Tuple[PerfScenario, ...] = (
    PerfScenario(
        name="delphi-n40-aws",
        description="Delphi n=40 on the AWS model (Fig. 6a medium cell)",
        quick=True,
        run=_delphi_aws(40),
    ),
    PerfScenario(
        name="delphi-n160-aws",
        description="Delphi n=160 on the AWS model (Fig. 6a largest cell)",
        quick=False,
        run=_delphi_aws(160),
    ),
    PerfScenario(
        name="sharded-delphi-n1000",
        description=(
            "Two-level sharded Delphi n=1000 (groups of 32) on the AWS "
            "model — the scale-out cell flat Delphi cannot reach"
        ),
        quick=False,
        run=_sharded_delphi_aws(1000, group_size=32),
    ),
    PerfScenario(
        name="abraham-n40-aws",
        description="Abraham et al. baseline n=40 on the AWS model",
        quick=True,
        run=_abraham_aws(40),
    ),
    PerfScenario(
        name="oracle-smr-e3-n13-aws",
        description="3 epochs of the DORA oracle network + SMR channel, n=13",
        quick=True,
        run=_oracle_smr(13, epochs=3),
    ),
    PerfScenario(
        name="oracle-service-e4-n7-churn",
        description=(
            "4 epochs of the epoch-pipelined oracle service, n=7, "
            "rotating 1-node churn, bitcoin workload"
        ),
        quick=True,
        run=_oracle_service(7, epochs=4),
    ),
    PerfScenario(
        name="oracle-gateway-n7",
        description=(
            "3 epochs of the client-facing gateway streamed to 50 live "
            "WebSocket subscribers, n=7, bitcoin workload"
        ),
        quick=True,
        run=_oracle_gateway(7, epochs=3, subscribers=50),
    ),
)


@dataclass(frozen=True)
class ScenarioResult:
    """Timing and equivalence outcome for one scenario.

    ``profile`` carries the optional per-layer attribution of a separate
    cProfile run (see :mod:`repro.perf.profiling`).
    """

    name: str
    description: str
    events: int
    fast: RunOutcome
    reference: Optional[RunOutcome]
    equivalent: Optional[bool]
    profile: Optional[Dict[str, Any]] = None
    #: Scenario-specific counters (e.g. the oracle service's epochs and
    #: certificates), used to derive domain throughput in the artifact.
    aux: Optional[Dict[str, int]] = None
    #: Wall-clock measurements from the fast run's metrics side-channel
    #: (e.g. the gateway's delivery-latency percentiles).  Reported in the
    #: artifact and gated by the baseline's latency ceilings, but never
    #: part of the equivalence fingerprint.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def speedup(self) -> Optional[float]:
        """Reference wall-clock divided by fast wall-clock."""
        if self.reference is None or self.fast.wall_seconds == 0:
            return None
        return self.reference.wall_seconds / self.fast.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "events": self.events,
            "fast_seconds": self.fast.wall_seconds,
            "fast_events_per_sec": (
                self.events / self.fast.wall_seconds if self.fast.wall_seconds else None
            ),
            "fingerprint": self.fast.fingerprint,
            "equivalent": self.equivalent,
        }
        if self.reference is not None:
            entry["reference_seconds"] = self.reference.wall_seconds
            entry["reference_events_per_sec"] = (
                self.events / self.reference.wall_seconds
                if self.reference.wall_seconds
                else None
            )
            entry["speedup"] = self.speedup
        if self.aux:
            seconds = self.fast.wall_seconds
            entry.update(self.aux)
            for key, count in self.aux.items():
                entry[f"{key}_per_sec"] = count / seconds if seconds else None
        if self.metrics is not None:
            entry["metrics"] = self.metrics
        if self.profile is not None:
            entry["profile"] = self.profile
        return entry


def _scenario_aux(projection: Any) -> Optional[Dict[str, int]]:
    """Domain counters for throughput reporting (oracle-layer shapes)."""
    if isinstance(projection, dict) and "reports" in projection and "chain_entries" in projection:
        return {
            "epochs": len(projection["reports"]),
            "certificates": int(projection["chain_entries"]),
        }
    if isinstance(projection, dict) and "certificates" in projection and "delivered" in projection:
        return {
            "epochs": len(projection["certificates"]),
            "certs_delivered": int(projection["delivered"]),
        }
    return None


def _run_engine(scenario: PerfScenario, engine: str) -> Tuple[RunOutcome, Any, Optional[Dict[str, Any]]]:
    started = time.perf_counter()
    outcome = scenario.run(engine)
    elapsed = time.perf_counter() - started
    # 2-tuple (events, projection) or 3-tuple with a trailing wall-clock
    # metrics dict that stays out of the fingerprint.
    if len(outcome) == 3:
        events, projection, metrics = outcome
    else:
        events, projection = outcome
        metrics = None
    run = RunOutcome(
        engine=engine,
        wall_seconds=elapsed,
        events=events,
        fingerprint=_fingerprint(projection),
    )
    return run, projection, metrics


def run_scenario(
    scenario: PerfScenario,
    verify: bool = True,
    profile: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> ScenarioResult:
    """Run one scenario on the fast engine (and the reference when
    ``verify``), asserting byte-identical results.

    With ``profile``, an extra run executes under cProfile and the
    per-layer attribution is attached to the result (timed runs are never
    instrumented).

    Raises
    ------
    EquivalenceError
        If the two engines disagree — perf numbers for a wrong result are
        meaningless, so this aborts the suite.
    """
    say = progress or (lambda message: None)
    say(f"[perf] {scenario.name}: fast engine ...")
    fast, fast_projection, fast_metrics = _run_engine(scenario, "fast")
    events = fast.events or 0
    reference: Optional[RunOutcome] = None
    equivalent: Optional[bool] = None
    if verify:
        say(f"[perf] {scenario.name}: reference engine (equivalence oracle) ...")
        reference, _, _ = _run_engine(scenario, "reference")
        equivalent = reference.fingerprint == fast.fingerprint
        if not equivalent:
            raise EquivalenceError(
                f"scenario {scenario.name!r}: fast and reference engines produced "
                f"different results (fast {fast.fingerprint[:16]} != "
                f"reference {reference.fingerprint[:16]})"
            )
        if not events:
            events = reference.events
    attribution: Optional[Dict[str, Any]] = None
    if profile:
        from repro.perf.profiling import profile_scenario

        say(f"[perf] {scenario.name}: profiled run (layer attribution) ...")
        attribution = profile_scenario(scenario)
    return ScenarioResult(
        name=scenario.name,
        description=scenario.description,
        events=events,
        fast=fast,
        reference=reference,
        equivalent=equivalent,
        profile=attribution,
        aux=_scenario_aux(fast_projection),
        metrics=fast_metrics,
    )


def select_scenarios(
    quick: bool = False, names: Optional[Sequence[str]] = None
) -> List[PerfScenario]:
    """The basket subset selected by CLI flags."""
    scenarios = list(SCENARIOS)
    if names:
        known = {scenario.name: scenario for scenario in scenarios}
        missing = [name for name in names if name not in known]
        if missing:
            raise ConfigurationError(
                f"unknown perf scenario(s) {', '.join(missing)} "
                f"(known: {', '.join(known)})"
            )
        return [known[name] for name in names]
    if quick:
        return [scenario for scenario in scenarios if scenario.quick]
    return scenarios


def run_suite(
    quick: bool = False,
    names: Optional[Sequence[str]] = None,
    verify: bool = True,
    profile: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ScenarioResult]:
    """Run the selected basket and return per-scenario results."""
    return [
        run_scenario(scenario, verify=verify, profile=profile, progress=progress)
        for scenario in select_scenarios(quick=quick, names=names)
    ]


def bench_payload(
    results: Sequence[ScenarioResult],
    quick: bool = False,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The BENCH artifact body (see README "Performance" for the schema).

    ``extra`` merges additional top-level sections into the payload (the
    CLI uses it for the flat-vs-sharded comparison table); it may not
    override the core keys.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "generated_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "quick": quick,
        "scenarios": [result.as_dict() for result in results],
    }
    for key, value in (extra or {}).items():
        if key in payload:
            raise ConfigurationError(f"extra payload section {key!r} shadows a core key")
        payload[key] = value
    return payload


def _bench_path(directory: Path, stamp: str) -> Path:
    """First free ``BENCH_<stamp>.json`` path, suffixing ``-2``, ``-3``, ...

    Same-day reruns used to silently clobber the earlier artifact — bad
    when the first run of the day is the committed record.
    """
    path = directory / f"BENCH_{stamp}.json"
    suffix = 2
    while path.exists():
        path = directory / f"BENCH_{stamp}-{suffix}.json"
        suffix += 1
    return path


def write_bench(
    results: Sequence[ScenarioResult],
    output_dir: str = ".",
    quick: bool = False,
    date: Optional[datetime.date] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<date>.json`` into ``output_dir`` and return its path.

    An existing same-day artifact is never overwritten; the new file gets
    a ``-2`` (``-3``, ...) suffix instead.
    """
    stamp = (date or datetime.date.today()).isoformat()
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = _bench_path(directory, stamp)
    payload = bench_payload(results, quick=quick, extra=extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
