"""Micro-benchmark subsystem: the repo's performance trajectory.

``python -m repro perf`` runs a fixed basket of simulation scenarios on the
fast engine *and* the reference engine, asserts that both produce
byte-identical results, and writes a ``BENCH_<date>.json`` artifact with
events/sec and wall-clock per scenario.  ``--profile`` attaches a per-layer
cProfile attribution to each scenario (:mod:`repro.perf.profiling`);
``--compare OLD.json`` renders a delta table against an older artifact and
gates on regressions and fingerprint changes (:mod:`repro.perf.compare`).
Committed baselines under ``benchmarks/perf_baseline.json`` let CI fail on
regressions; see the "Performance" section of the README and
``docs/SIMULATOR.md``.
"""

from repro.perf.baseline import compare_to_baseline, load_baseline
from repro.perf.compare import (
    DEFAULT_REGRESSION_THRESHOLD,
    ComparisonRow,
    compare_results,
    comparison_failed,
    load_comparable,
    render_markdown_table,
)
from repro.perf.profiling import attribute_stats, classify_entry, profile_scenario
from repro.perf.sharding import render_sharding_table, sharding_comparison
from repro.perf.suite import (
    SCENARIOS,
    PerfScenario,
    ScenarioResult,
    run_suite,
    write_bench,
)

__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "SCENARIOS",
    "ComparisonRow",
    "PerfScenario",
    "ScenarioResult",
    "attribute_stats",
    "classify_entry",
    "compare_results",
    "compare_to_baseline",
    "comparison_failed",
    "load_baseline",
    "load_comparable",
    "profile_scenario",
    "render_markdown_table",
    "render_sharding_table",
    "run_suite",
    "sharding_comparison",
    "write_bench",
]
