"""Micro-benchmark subsystem: the repo's performance trajectory.

``python -m repro perf`` runs a fixed basket of simulation scenarios on the
fast engine *and* the reference engine, asserts that both produce
byte-identical results, and writes a ``BENCH_<date>.json`` artifact with
events/sec and wall-clock per scenario.  Committed baselines under
``benchmarks/perf_baseline.json`` let CI fail on regressions; see the
"Performance" section of the README and ``docs/SIMULATOR.md``.
"""

from repro.perf.baseline import compare_to_baseline, load_baseline
from repro.perf.suite import (
    SCENARIOS,
    PerfScenario,
    ScenarioResult,
    run_suite,
    write_bench,
)

__all__ = [
    "SCENARIOS",
    "PerfScenario",
    "ScenarioResult",
    "compare_to_baseline",
    "load_baseline",
    "run_suite",
    "write_bench",
]
