"""Profile-attributed perf runs: where does the simulated second go?

``python -m repro perf --profile`` executes each basket scenario's fast-path
run once more under :mod:`cProfile` and folds the flat self-time (tottime)
of every recorded function into a small set of *layers*:

========== ==========================================================
layer       meaning
========== ==========================================================
scheduler   the event loop and scheduler (``repro/sim/``)
network     latency, bandwidth and delivery policy (``repro/net/``,
            except the message module)
message     message construction and wire-size accounting
            (``repro/net/message.py``)
protocol    the protocol layer (``repro/core/``, ``repro/protocols/``,
            ``repro/oracle/``)
crypto      hashing, signatures, HMAC, coin (``repro/crypto/``)
builtin     C builtins (heap ops, dict/set methods, ``len`` ...) —
            charged where the interpreter spends them, callers are
            spread across all layers
other       everything else (harness, numpy internals, workloads)
========== ==========================================================

Self-time is used (not cumulative) so the layer shares are disjoint and sum
to the profiled wall time: "protocol 40%" means the bytecode of protocol
modules consumed 40% of the run, no double counting.  The attribution is
embedded per scenario in the BENCH artifact, which makes every optimisation
PR auditable: the artifact shows not just *how fast* but *where the
remaining time sits*.

Profiled runs are slower than plain runs (cProfile instruments every call),
so the attribution run is separate from the timed run and its wall time is
reported separately (``profiled_seconds``).
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Dict, List, Tuple

#: Layer names in reporting order.
LAYERS: Tuple[str, ...] = (
    "scheduler",
    "network",
    "message",
    "protocol",
    "crypto",
    "builtin",
    "other",
)

#: Path fragments (posix-style) mapped to layers, first match wins.
_PATH_RULES: Tuple[Tuple[str, str], ...] = (
    ("repro/net/message", "message"),
    ("repro/net/", "network"),
    ("repro/sim/", "scheduler"),
    ("repro/core/", "protocol"),
    ("repro/protocols/", "protocol"),
    ("repro/oracle/", "protocol"),
    ("repro/crypto/", "crypto"),
)


def classify_entry(filename: str) -> str:
    """Map one profile entry's filename to its layer."""
    if filename.startswith("~") or filename.startswith("<"):
        # pstats marks C builtins with a "~" pseudo-filename; "<string>"
        # and friends are eval frames.
        return "builtin"
    path = filename.replace("\\", "/")
    for fragment, layer in _PATH_RULES:
        if fragment in path:
            return layer
    return "other"


def attribute_stats(stats: pstats.Stats, top: int = 12) -> Dict[str, Any]:
    """Fold a :class:`pstats.Stats` into the per-layer attribution dict."""
    layer_seconds: Dict[str, float] = {layer: 0.0 for layer in LAYERS}
    rows: List[Tuple[float, str]] = []
    total = 0.0
    for (filename, lineno, function), (
        _cc,
        _nc,
        tottime,
        _cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        layer = classify_entry(filename)
        layer_seconds[layer] += tottime
        total += tottime
        if tottime > 0.0:
            if filename.startswith("~") or filename.startswith("<"):
                where = function
            else:
                short = filename.replace("\\", "/").rsplit("/repro/", 1)[-1]
                where = f"{short}:{lineno}:{function}"
            rows.append((tottime, where))
    rows.sort(reverse=True)
    layers = {
        layer: {
            "seconds": round(seconds, 6),
            "share": round(seconds / total, 4) if total else 0.0,
        }
        for layer, seconds in layer_seconds.items()
    }
    return {
        "profiled_seconds": round(total, 6),
        "layers": layers,
        "top": [
            {"seconds": round(seconds, 6), "function": where}
            for seconds, where in rows[:top]
        ],
    }


def profile_scenario(scenario, engine: str = "fast", top: int = 12) -> Dict[str, Any]:
    """Run ``scenario`` once under cProfile and return its attribution.

    ``scenario`` is a :class:`repro.perf.suite.PerfScenario`; the profiled
    run is an extra execution on top of the timed one, so timing numbers in
    the BENCH artifact are never polluted by profiler overhead.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        scenario.run(engine)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    attribution = attribute_stats(stats, top=top)
    attribution["engine"] = engine
    return attribution


def render_attribution(name: str, attribution: Dict[str, Any]) -> str:
    """One human-readable line per layer (used by the CLI)."""
    layers = attribution["layers"]
    parts = [
        f"{layer} {layers[layer]['share'] * 100.0:.1f}%"
        for layer in LAYERS
        if layers.get(layer, {}).get("seconds", 0.0) > 0.0
    ]
    return f"[profile] {name}: " + ", ".join(parts)
