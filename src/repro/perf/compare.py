"""Per-scenario delta tables: compare a perf run against an older artifact.

``python -m repro perf --compare OLD.json`` renders, for every scenario the
current run and the old artifact share, the throughput delta (events/sec and
speedup), whether the result fingerprint still matches, and a pass/fail
verdict against a configurable regression threshold.  The command exits
non-zero when any scenario regressed beyond the threshold or changed its
fingerprint — a fingerprint change means the *results* differ, which is
never acceptable for a pure performance change.

``OLD.json`` may be either

* a BENCH artifact (``repro-perf/1`` — what ``python -m repro perf``
  writes), or
* a committed baseline file (``repro-perf-baseline/1`` —
  ``benchmarks/perf_baseline.json``), whose optional ``fingerprints`` table
  enables the fingerprint column.

The rendered table is GitHub-flavoured markdown so CI can append it to
``$GITHUB_STEP_SUMMARY`` verbatim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.perf.baseline import BASELINE_SCHEMA
from repro.perf.suite import BENCH_SCHEMA

#: Default tolerated fractional throughput drop (0.20 = fail below 80% of old).
DEFAULT_REGRESSION_THRESHOLD = 0.20


@dataclass(frozen=True)
class ComparisonRow:
    """One scenario's old-vs-new comparison."""

    name: str
    old_events_per_sec: float
    new_events_per_sec: Optional[float]
    old_fingerprint: Optional[str]
    new_fingerprint: str
    threshold: float

    @property
    def speedup(self) -> Optional[float]:
        """new / old throughput (1.0 = unchanged, > 1 = faster)."""
        if self.new_events_per_sec is None or self.old_events_per_sec <= 0:
            return None
        return self.new_events_per_sec / self.old_events_per_sec

    @property
    def fingerprint_match(self) -> Optional[bool]:
        """Whether results are byte-identical (``None`` if the old artifact
        recorded no fingerprint for this scenario)."""
        if self.old_fingerprint is None:
            return None
        return self.old_fingerprint == self.new_fingerprint

    @property
    def regressed(self) -> bool:
        """Whether throughput dropped beyond the tolerated threshold."""
        speedup = self.speedup
        return speedup is None or speedup < 1.0 - self.threshold

    @property
    def ok(self) -> bool:
        """Row verdict: within threshold and results unchanged."""
        return not self.regressed and self.fingerprint_match is not False


def load_comparable(path: str) -> Dict[str, Dict[str, Any]]:
    """Load a BENCH artifact or baseline file into ``name -> {events_per_sec,
    fingerprint}`` form."""
    file_path = Path(path)
    if not file_path.exists():
        raise ConfigurationError(f"comparison file not found: {path}")
    try:
        payload = json.loads(file_path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"comparison file {path} is not valid JSON: {error}")
    schema = payload.get("schema")
    table: Dict[str, Dict[str, Any]] = {}
    if schema == BENCH_SCHEMA:
        for scenario in payload.get("scenarios", []):
            events_per_sec = scenario.get("fast_events_per_sec")
            if events_per_sec is None:
                continue
            table[scenario["name"]] = {
                "events_per_sec": float(events_per_sec),
                "fingerprint": scenario.get("fingerprint"),
            }
    elif schema == BASELINE_SCHEMA:
        fingerprints = payload.get("fingerprints", {})
        for name, events_per_sec in payload.get("events_per_sec", {}).items():
            table[name] = {
                "events_per_sec": float(events_per_sec),
                "fingerprint": fingerprints.get(name),
            }
    else:
        raise ConfigurationError(
            f"comparison file {path} has schema {schema!r}, expected "
            f"{BENCH_SCHEMA!r} or {BASELINE_SCHEMA!r}"
        )
    if not table:
        raise ConfigurationError(f"comparison file {path} contains no scenarios")
    return table


def compare_results(
    results: Sequence,
    old: Dict[str, Dict[str, Any]],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> List[ComparisonRow]:
    """Build comparison rows for every scenario present in both sides.

    ``results`` are :class:`~repro.perf.suite.ScenarioResult` objects.
    Scenarios only on one side are skipped — new scenarios can land before
    their first artifact, and ``--quick`` runs a subset.
    """
    if not 0.0 <= threshold < 1.0:
        raise ConfigurationError(
            f"regression threshold must be in [0, 1), got {threshold}"
        )
    rows: List[ComparisonRow] = []
    for result in results:
        recorded = old.get(result.name)
        if recorded is None:
            continue
        entry = result.as_dict()
        rows.append(
            ComparisonRow(
                name=result.name,
                old_events_per_sec=recorded["events_per_sec"],
                new_events_per_sec=entry.get("fast_events_per_sec"),
                old_fingerprint=recorded.get("fingerprint"),
                new_fingerprint=entry["fingerprint"],
                threshold=threshold,
            )
        )
    return rows


def render_markdown_table(rows: Sequence[ComparisonRow]) -> str:
    """The delta table as GitHub-flavoured markdown."""
    lines = [
        "| scenario | old events/sec | new events/sec | speedup | fingerprint | verdict |",
        "|---|---:|---:|---:|---|---|",
    ]
    for row in rows:
        speedup = row.speedup
        match = row.fingerprint_match
        lines.append(
            "| {name} | {old:,.0f} | {new} | {speedup} | {fingerprint} | {verdict} |".format(
                name=row.name,
                old=row.old_events_per_sec,
                new=(
                    f"{row.new_events_per_sec:,.0f}"
                    if row.new_events_per_sec is not None
                    else "n/a"
                ),
                speedup=f"{speedup:.2f}x" if speedup is not None else "n/a",
                fingerprint=(
                    "match" if match else "MISMATCH" if match is False else "n/a"
                ),
                verdict="ok" if row.ok else "FAIL",
            )
        )
    return "\n".join(lines)


def comparison_failed(rows: Sequence[ComparisonRow]) -> bool:
    """Whether any row fails (regression beyond threshold or fingerprint
    mismatch); an empty comparison is also a failure (nothing was gated)."""
    if not rows:
        return True
    return any(not row.ok for row in rows)
