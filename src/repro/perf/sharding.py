"""Flat-vs-sharded Delphi comparison table.

Flat Delphi broadcasts every BUNDLE to all ``n`` nodes, so its traffic
grows as O(n^2); the two-level sharded variant keeps broadcasts inside
groups of ``m`` plus one representative round, cutting the per-node fan
out to O(m + n/m).  This module measures both variants on the AWS model
and renders the comparison across n ∈ {40, 160, 400, 1000}.

Flat cells are *measured* up to n=160 (the paper's largest system size —
also the practical ceiling for the quadratic basket) and *extrapolated*
quadratically above it: messages and bandwidth scale with the square of
``n`` at fixed round count, so the n=160 measurement times ``(n/160)^2``
is the honest estimate of what a flat run would cost.  Extrapolated rows
carry ``"flat_basis": "extrapolated"`` and no flat runtime (simulated
runtime does not follow the quadratic law).  Sharded cells are measured
at every size.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

#: Sizes the comparison table covers (the acceptance sweep).
COMPARISON_SIZES = (40, 160, 400, 1000)

#: Largest flat cell actually executed; larger flat cells are extrapolated.
FLAT_MEASURE_CEILING = 160

#: Schema tag for the embedded table.
SHARDING_TABLE_SCHEMA = "repro-sharding-comparison/1"


def _run_flat(n: int, engine: str) -> Dict[str, Any]:
    from repro.analysis.parameters import derive_parameters
    from repro.experiments.cells import build_inputs, build_network
    from repro.experiments.spec import ScenarioSpec
    from repro.runner import run_delphi
    from repro.sim.runtime import SimulationConfig

    spec = ScenarioSpec(protocol="delphi", n=n, testbed="aws", seed=1)
    inputs = build_inputs(spec)
    network, compute = build_network(spec)
    params = derive_parameters(
        n=n,
        epsilon=spec.epsilon,
        rho0=spec.rho0,
        delta_max=spec.delta_max,
        max_rounds=spec.max_rounds,
    )
    result = run_delphi(
        params,
        inputs,
        network=network,
        compute=compute,
        config=SimulationConfig(engine=engine),
    )
    return {
        "message_count": result.message_count,
        "megabytes": result.total_megabytes,
        "runtime_seconds": result.runtime_seconds,
    }


def _run_sharded(n: int, group_size: int, engine: str) -> Dict[str, Any]:
    from repro.experiments.cells import build_inputs, build_network
    from repro.experiments.spec import ScenarioSpec
    from repro.protocols.sharded_delphi import sharded_parameters_of
    from repro.runner import run_sharded_delphi
    from repro.sim.runtime import SimulationConfig

    spec = ScenarioSpec(
        protocol="sharded-delphi",
        n=n,
        testbed="aws",
        seed=1,
        extras={"group_size": group_size},
    )
    inputs = build_inputs(spec)
    network, compute = build_network(spec)
    params = sharded_parameters_of(spec)
    result = run_sharded_delphi(
        params,
        inputs,
        network=network,
        compute=compute,
        config=SimulationConfig(engine=engine),
    )
    return {
        "message_count": result.message_count,
        "megabytes": result.total_megabytes,
        "runtime_seconds": result.runtime_seconds,
        "num_groups": params.topology.num_groups,
    }


def sharding_comparison(
    sizes: Sequence[int] = COMPARISON_SIZES,
    group_size: int = 32,
    engine: str = "fast",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Measure/extrapolate both variants and return the comparison table.

    Each row carries flat and sharded message counts, bandwidth and (for
    measured cells) simulated runtime, plus the message-count reduction
    factor ``flat / sharded`` — the acceptance criterion is >= 5x at
    n=1000.
    """
    say = progress or (lambda message: None)
    flat_basis: Optional[Dict[str, Any]] = None
    basis_n = max(
        (n for n in sizes if n <= FLAT_MEASURE_CEILING), default=FLAT_MEASURE_CEILING
    )
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        if n <= FLAT_MEASURE_CEILING:
            say(f"[sharding] flat delphi n={n} ({engine} engine) ...")
            flat = _run_flat(n, engine)
            flat["basis"] = "measured"
            if n == basis_n:
                flat_basis = dict(flat)
        else:
            if flat_basis is None:
                say(f"[sharding] flat delphi n={basis_n} (extrapolation basis) ...")
                flat_basis = _run_flat(basis_n, engine)
                flat_basis["basis"] = "measured"
            scale = (n / basis_n) ** 2
            flat = {
                "message_count": int(round(flat_basis["message_count"] * scale)),
                "megabytes": round(flat_basis["megabytes"] * scale, 6),
                "runtime_seconds": None,  # not quadratic; no honest estimate
                "basis": "extrapolated",
            }
        say(f"[sharding] sharded delphi n={n} groups of {group_size} ({engine} engine) ...")
        sharded = _run_sharded(n, group_size, engine)
        rows.append(
            {
                "n": n,
                "flat": flat,
                "sharded": sharded,
                "message_reduction": (
                    flat["message_count"] / sharded["message_count"]
                    if sharded["message_count"]
                    else None
                ),
                "bandwidth_reduction": (
                    flat["megabytes"] / sharded["megabytes"]
                    if sharded["megabytes"]
                    else None
                ),
            }
        )
    return {
        "schema": SHARDING_TABLE_SCHEMA,
        "engine": engine,
        "group_size": group_size,
        "flat_measure_ceiling": FLAT_MEASURE_CEILING,
        "rows": rows,
    }


def render_sharding_table(table: Dict[str, Any]) -> str:
    """Markdown rendering of a :func:`sharding_comparison` table."""
    lines = [
        "| n | flat msgs | flat MB | sharded msgs | sharded MB | msg reduction | flat basis |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in table["rows"]:
        flat, sharded = row["flat"], row["sharded"]
        reduction = row["message_reduction"]
        lines.append(
            f"| {row['n']} | {flat['message_count']:,} | {flat['megabytes']:.1f} "
            f"| {sharded['message_count']:,} | {sharded['megabytes']:.1f} "
            f"| {reduction:.1f}x | {flat['basis']} |"
        )
    return "\n".join(lines)
