"""Committed perf baselines and regression gating.

``benchmarks/perf_baseline.json`` records events/sec for each perf scenario
as measured on the reference machine when the fast path landed, plus the
pre-fast-path ("pre-PR") throughput for context.  CI runs
``python -m repro perf --quick --check benchmarks/perf_baseline.json`` and
fails when any scenario drops below ``baseline / max_regression`` — loose
enough (2x by default) to absorb runner-hardware variance, tight enough to
catch an accidental return to per-message payload walks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Schema tag expected at the top of a baseline file.
BASELINE_SCHEMA = "repro-perf-baseline/1"

#: Default tolerated slowdown factor vs the committed baseline.
DEFAULT_MAX_REGRESSION = 2.0


@dataclass(frozen=True)
class BaselineCheck:
    """One scenario's comparison against the committed baseline."""

    name: str
    current_events_per_sec: Optional[float]
    baseline_events_per_sec: float
    max_regression: float

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline (>= 1.0 means at least as fast as recorded)."""
        if self.current_events_per_sec is None or self.baseline_events_per_sec <= 0:
            return None
        return self.current_events_per_sec / self.baseline_events_per_sec

    @property
    def ok(self) -> bool:
        """Whether the scenario is within the tolerated regression."""
        ratio = self.ratio
        return ratio is not None and ratio >= 1.0 / self.max_regression

    def describe(self) -> str:
        ratio = self.ratio
        shown = f"{ratio:.2f}x" if ratio is not None else "n/a"
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.name}: {shown} of baseline "
            f"({self.current_events_per_sec or 0:,.0f} vs "
            f"{self.baseline_events_per_sec:,.0f} events/sec) -> {verdict}"
        )


def load_baseline(path: str) -> Dict[str, Any]:
    """Load and validate a committed baseline file."""
    file_path = Path(path)
    if not file_path.exists():
        raise ConfigurationError(f"baseline file not found: {path}")
    try:
        payload = json.loads(file_path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"baseline file {path} is not valid JSON: {error}")
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"baseline file {path} has schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA!r}"
        )
    if not isinstance(payload.get("events_per_sec"), dict):
        raise ConfigurationError(
            f"baseline file {path} is missing the events_per_sec table"
        )
    return payload


def compare_to_baseline(
    results: Sequence, baseline: Dict[str, Any]
) -> List[BaselineCheck]:
    """Compare suite results against a loaded baseline.

    Scenarios absent from the baseline table are skipped (new scenarios can
    land before their baseline is recorded); scenarios in the baseline that
    did not run are also skipped (``--quick`` runs a subset).
    """
    table = baseline["events_per_sec"]
    max_regression = float(baseline.get("max_regression", DEFAULT_MAX_REGRESSION))
    checks: List[BaselineCheck] = []
    for result in results:
        recorded = table.get(result.name)
        if recorded is None:
            continue
        entry = result.as_dict()
        checks.append(
            BaselineCheck(
                name=result.name,
                current_events_per_sec=entry.get("fast_events_per_sec"),
                baseline_events_per_sec=float(recorded),
                max_regression=max_regression,
            )
        )
    return checks
