"""Committed perf baselines and regression gating.

``benchmarks/perf_baseline.json`` records, for each perf scenario, the
throughput measured on the reference machine when the scenario landed —
``events_per_sec`` plus optional domain-rate floors in ``aux_floors``
(e.g. the gateway's ``certs_delivered_per_sec``) — and optional wall-clock
ceilings in ``latency_ceilings_ms`` (e.g. the gateway's p99 delivery
latency, read from the scenario's non-fingerprinted metrics side-channel),
plus an optional ``fingerprints`` table pinning a scenario's committed
result fingerprint — an exact-match determinism gate (used by the sharded
n=1000 cell, whose outputs must be byte-stable across machines).
CI runs ``python -m repro perf --quick --check benchmarks/perf_baseline.json``
and fails when any floor metric drops below ``baseline / max_regression``
or any ceiling metric rises above ``baseline * max_regression`` — loose
enough (2x by default) to absorb runner-hardware variance, tight enough to
catch an accidental return to per-message payload walks or a serving-path
stall.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Schema tag expected at the top of a baseline file.
BASELINE_SCHEMA = "repro-perf-baseline/1"

#: Default tolerated slowdown factor vs the committed baseline.
DEFAULT_MAX_REGRESSION = 2.0


@dataclass(frozen=True)
class BaselineCheck:
    """One metric's comparison against the committed baseline.

    ``kind`` selects the direction: ``"floor"`` metrics (throughput) must
    stay above ``baseline / max_regression``; ``"ceiling"`` metrics
    (latency) must stay below ``baseline * max_regression``.  The field
    names keep the original events/sec spelling for the common case; for
    other metrics ``metric`` carries the displayed name and unit.
    """

    name: str
    current_events_per_sec: Optional[float]
    baseline_events_per_sec: float
    max_regression: float
    metric: str = "events/sec"
    kind: str = "floor"

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline (for floors, >= 1.0 means at least as fast)."""
        if self.current_events_per_sec is None or self.baseline_events_per_sec <= 0:
            return None
        return self.current_events_per_sec / self.baseline_events_per_sec

    @property
    def ok(self) -> bool:
        """Whether the metric is within the tolerated regression."""
        ratio = self.ratio
        if ratio is None:
            return False
        if self.kind == "ceiling":
            return ratio <= self.max_regression
        return ratio >= 1.0 / self.max_regression

    def describe(self) -> str:
        ratio = self.ratio
        shown = f"{ratio:.2f}x" if ratio is not None else "n/a"
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.name}: {shown} of baseline "
            f"({self.current_events_per_sec or 0:,.2f} vs "
            f"{self.baseline_events_per_sec:,.2f} {self.metric}) -> {verdict}"
        )


def load_baseline(path: str) -> Dict[str, Any]:
    """Load and validate a committed baseline file."""
    file_path = Path(path)
    if not file_path.exists():
        raise ConfigurationError(f"baseline file not found: {path}")
    try:
        payload = json.loads(file_path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"baseline file {path} is not valid JSON: {error}")
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"baseline file {path} has schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA!r}"
        )
    if not isinstance(payload.get("events_per_sec"), dict):
        raise ConfigurationError(
            f"baseline file {path} is missing the events_per_sec table"
        )
    for optional_table in ("aux_floors", "latency_ceilings_ms", "fingerprints"):
        if optional_table in payload and not isinstance(payload[optional_table], dict):
            raise ConfigurationError(
                f"baseline file {path}: {optional_table} must be a table"
            )
    return payload


def compare_to_baseline(
    results: Sequence, baseline: Dict[str, Any]
) -> List[BaselineCheck]:
    """Compare suite results against a loaded baseline.

    Scenarios absent from the baseline tables are skipped (new scenarios
    can land before their baseline is recorded); scenarios in the baseline
    that did not run are also skipped (``--quick`` runs a subset).
    """
    table = baseline["events_per_sec"]
    aux_floors = baseline.get("aux_floors", {})
    latency_ceilings = baseline.get("latency_ceilings_ms", {})
    fingerprints = baseline.get("fingerprints", {})
    max_regression = float(baseline.get("max_regression", DEFAULT_MAX_REGRESSION))
    checks: List[BaselineCheck] = []
    for result in results:
        entry = result.as_dict()
        recorded = table.get(result.name)
        if recorded is not None:
            checks.append(
                BaselineCheck(
                    name=result.name,
                    current_events_per_sec=entry.get("fast_events_per_sec"),
                    baseline_events_per_sec=float(recorded),
                    max_regression=max_regression,
                )
            )
        for metric, floor in (aux_floors.get(result.name) or {}).items():
            current = entry.get(metric)
            checks.append(
                BaselineCheck(
                    name=result.name,
                    current_events_per_sec=(
                        float(current) if isinstance(current, (int, float)) else None
                    ),
                    baseline_events_per_sec=float(floor),
                    max_regression=max_regression,
                    metric=metric,
                    kind="floor",
                )
            )
        metrics = entry.get("metrics") or {}
        for metric, ceiling in (latency_ceilings.get(result.name) or {}).items():
            current = metrics.get(metric)
            checks.append(
                BaselineCheck(
                    name=result.name,
                    current_events_per_sec=(
                        float(current) if isinstance(current, (int, float)) else None
                    ),
                    baseline_events_per_sec=float(ceiling),
                    max_regression=max_regression,
                    metric=f"{metric} latency (ms)",
                    kind="ceiling",
                )
            )
        recorded_fingerprint = fingerprints.get(result.name)
        if recorded_fingerprint is not None:
            # Determinism gate: the committed fingerprint must reproduce
            # exactly.  Encoded as a floor at 1.0 with zero tolerance so it
            # reuses the floor machinery (1.0 = match, 0.0 = mismatch).
            matches = entry.get("fingerprint") == recorded_fingerprint
            checks.append(
                BaselineCheck(
                    name=result.name,
                    current_events_per_sec=1.0 if matches else 0.0,
                    baseline_events_per_sec=1.0,
                    max_regression=1.0,
                    metric="fingerprint match",
                    kind="floor",
                )
            )
    return checks
