"""Model of the paper's geo-distributed AWS testbed.

The paper runs its oracle-network evaluation on ``t2.micro`` instances (one
vCPU, 2 GB RAM) spread equally across eight AWS regions.  In that
environment protocol runtime is dominated by wide-area round trips (tens to
hundreds of milliseconds), with per-message CPU cost a secondary factor and
per-node bandwidth effectively unconstrained for the message sizes involved.

:class:`AwsTestbed` packages the three ingredients the simulation runtime
needs to reproduce that environment:

* the inter-region latency model of :func:`repro.net.latency.aws_latency_model`,
* an effectively unthrottled per-node uplink (``100 Mbit/s``), and
* a modest per-message/per-byte CPU cost plus an expensive per-crypto-unit
  cost calibrated to the "pairing costs ~1000x a symmetric operation" ratio
  the paper quotes, so the signature/coin-heavy baselines pay for their
  computation even on AWS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.bandwidth import BandwidthModel
from repro.net.latency import aws_latency_model
from repro.net.network import AsynchronousNetwork, DeliveryPolicy
from repro.sim.runtime import ComputeModel

#: Time for one symmetric-key (HMAC) operation on a t2.micro, seconds.
SYMMETRIC_OP_SECONDS = 2e-6

#: Time for one pairing-equivalent operation (1000x symmetric), seconds.
PAIRING_OP_SECONDS = 2e-3


@dataclass
class AwsTestbed:
    """Factory for simulation components reproducing the AWS environment.

    Parameters
    ----------
    num_nodes:
        Number of protocol nodes (assigned round-robin across the 8 regions).
    seed:
        Seed controlling latency jitter and adversarial reordering.
    adversarial_delay:
        Extra delay (seconds) the network adversary may add to any message.
    """

    num_nodes: int
    seed: int = 0
    adversarial_delay: float = 0.0
    uplink_bits_per_second: float = 100e6

    def network(self) -> AsynchronousNetwork:
        """A fresh simulated network configured like the AWS testbed."""
        return AsynchronousNetwork(
            num_nodes=self.num_nodes,
            latency=aws_latency_model(self.num_nodes, seed=self.seed),
            bandwidth=BandwidthModel(bits_per_second=self.uplink_bits_per_second),
            policy=DeliveryPolicy(
                max_extra_delay=self.adversarial_delay, reorder=True, seed=self.seed
            ),
        )

    def compute(self) -> ComputeModel:
        """Per-node CPU model of a t2.micro instance."""
        return ComputeModel(
            per_message_seconds=5e-6,
            per_byte_seconds=2e-9,
            per_crypto_unit_seconds=PAIRING_OP_SECONDS,
        )

    def describe(self) -> dict:
        """Summary used in experiment reports."""
        return {
            "testbed": "aws",
            "num_nodes": self.num_nodes,
            "regions": 8,
            "uplink_mbps": self.uplink_bits_per_second / 1e6,
            "pairing_op_ms": PAIRING_OP_SECONDS * 1e3,
        }
