"""Metrics collection shared by the benchmark harness.

Every benchmark run produces an :class:`ExperimentRecord` (protocol,
parameters, simulated runtime, bandwidth, agreement spread, validity margin);
:class:`MetricsCollector` accumulates records and renders the same kind of
rows/series the paper's tables and figures report, in plain text, so that
``pytest benchmarks/ --benchmark-only`` output doubles as the experiment
log captured in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class ExperimentRecord:
    """One measured data point of one experiment."""

    experiment: str
    protocol: str
    n: int
    runtime_seconds: float
    megabytes: float
    message_count: int = 0
    output_spread: float = 0.0
    validity_margin: float = 0.0
    parameters: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return asdict(self)


class MetricsCollector:
    """Accumulates experiment records and renders report tables."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.records: List[ExperimentRecord] = []

    def add(self, record: ExperimentRecord) -> None:
        """Store one record."""
        self.records.append(record)

    def add_run(
        self,
        protocol: str,
        n: int,
        runtime_seconds: float,
        megabytes: float,
        message_count: int = 0,
        output_spread: float = 0.0,
        validity_margin: float = 0.0,
        **parameters: float,
    ) -> ExperimentRecord:
        """Convenience constructor + store."""
        record = ExperimentRecord(
            experiment=self.experiment,
            protocol=protocol,
            n=n,
            runtime_seconds=runtime_seconds,
            megabytes=megabytes,
            message_count=message_count,
            output_spread=output_spread,
            validity_margin=validity_margin,
            parameters=dict(parameters),
        )
        self.add(record)
        return record

    # ------------------------------------------------------------------
    def series(self, protocol: str) -> List[ExperimentRecord]:
        """All records of one protocol, ordered by system size."""
        return sorted(
            (record for record in self.records if record.protocol == protocol),
            key=lambda record: record.n,
        )

    def protocols(self) -> List[str]:
        """Distinct protocols present, in first-seen order."""
        seen: List[str] = []
        for record in self.records:
            if record.protocol not in seen:
                seen.append(record.protocol)
        return seen

    def render_table(self, value: str = "runtime_seconds") -> str:
        """Render a protocol-by-n table of the chosen metric as text."""
        sizes = sorted({record.n for record in self.records})
        lines = [f"# {self.experiment}: {value}"]
        header = "protocol".ljust(16) + "".join(f"{f'n={size}':>14}" for size in sizes)
        lines.append(header)
        for protocol in self.protocols():
            cells = []
            by_n = {record.n: record for record in self.series(protocol)}
            for size in sizes:
                record = by_n.get(size)
                cells.append(
                    f"{getattr(record, value):>14.4f}" if record is not None else f"{'-':>14}"
                )
            lines.append(protocol.ljust(16) + "".join(cells))
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialise every record (for archival alongside benchmark output)."""
        return json.dumps([record.as_dict() for record in self.records], indent=2)

    def speedup(self, baseline: str, against: str) -> Dict[int, float]:
        """Runtime ratio baseline/against per system size (the paper's
        "Delphi takes 1/3rd the time of FIN" style numbers)."""
        base = {record.n: record.runtime_seconds for record in self.series(baseline)}
        other = {record.n: record.runtime_seconds for record in self.series(against)}
        return {
            n: base[n] / other[n]
            for n in sorted(set(base) & set(other))
            if other[n] > 0
        }
