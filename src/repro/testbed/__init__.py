"""Models of the paper's two testbeds (AWS and CPS) and metrics helpers."""

from repro.testbed.aws import AwsTestbed
from repro.testbed.cps import CpsTestbed
from repro.testbed.metrics import ExperimentRecord, MetricsCollector

__all__ = ["AwsTestbed", "CpsTestbed", "ExperimentRecord", "MetricsCollector"]
