"""Model of the paper's embedded CPS testbed (Raspberry Pi cluster).

The drone-localisation evaluation runs on 15 Raspberry Pi 4-B devices (4
cores, 2 GB RAM) behind a single network switch, with several protocol
processes per device to emulate larger swarms.  In that environment network
propagation delay is negligible, but two resources are scarce and shared:

* **bandwidth** — the devices share a constrained uplink, so the per-round
  communication *volume* becomes the dominant runtime driver (the paper's
  Fig. 7 shows exactly this inversion relative to AWS), and
* **CPU** — the slow cores make per-message processing and especially the
  pairing-heavy operations of the baselines very expensive.

:class:`CpsTestbed` reproduces this with a LAN latency model, a tight
per-node bandwidth cap, and per-message / per-crypto CPU costs roughly 10x
the AWS model (a Pi core is roughly an order of magnitude slower than a
t2.micro vCPU for this kind of workload).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.bandwidth import BandwidthModel
from repro.net.latency import cps_latency_model
from repro.net.network import AsynchronousNetwork, DeliveryPolicy
from repro.sim.runtime import ComputeModel

#: Pairing-equivalent operation cost on a Raspberry Pi core, seconds.
PAIRING_OP_SECONDS_PI = 2e-2


@dataclass
class CpsTestbed:
    """Factory for simulation components reproducing the CPS environment.

    Parameters
    ----------
    num_nodes:
        Number of protocol processes (the paper emulates up to 169 processes
        on 15 devices).
    processes_per_device:
        How many protocol processes share one physical device; the effective
        per-process bandwidth is the device uplink divided by this factor.
    device_uplink_bits_per_second:
        NIC capacity of one Raspberry Pi (100 Mbit/s switch port, of which a
        fraction is usable in practice).
    """

    num_nodes: int
    seed: int = 0
    adversarial_delay: float = 0.0
    processes_per_device: int = 12
    device_uplink_bits_per_second: float = 90e6

    def network(self) -> AsynchronousNetwork:
        """A fresh simulated network configured like the CPS testbed."""
        per_process = self.device_uplink_bits_per_second / max(1, self.processes_per_device)
        return AsynchronousNetwork(
            num_nodes=self.num_nodes,
            latency=cps_latency_model(self.num_nodes, seed=self.seed),
            bandwidth=BandwidthModel(bits_per_second=per_process),
            policy=DeliveryPolicy(
                max_extra_delay=self.adversarial_delay, reorder=True, seed=self.seed
            ),
        )

    def compute(self) -> ComputeModel:
        """Per-process CPU model of a shared Raspberry Pi core."""
        return ComputeModel(
            per_message_seconds=6e-5,
            per_byte_seconds=3e-8,
            per_crypto_unit_seconds=PAIRING_OP_SECONDS_PI,
        )

    def describe(self) -> dict:
        """Summary used in experiment reports."""
        return {
            "testbed": "cps",
            "num_nodes": self.num_nodes,
            "processes_per_device": self.processes_per_device,
            "device_uplink_mbps": self.device_uplink_bits_per_second / 1e6,
            "pairing_op_ms": PAIRING_OP_SECONDS_PI * 1e3,
        }
