#!/usr/bin/env python3
"""Fault-injection example: Delphi under an active Byzantine adversary.

This example demonstrates the adversary toolbox: it runs the same oracle
agreement repeatedly while escalating the attack —

* no faults,
* crash faults (silent nodes),
* poisoned inputs (Byzantine nodes run the protocol on wild values),
* equivocation plus adversarial message delay and reordering,

and reports, for each scenario, whether the honest nodes still reached
``epsilon``-agreement inside the relaxed validity range.

Run with::

    python examples/fault_injection.py
"""

from __future__ import annotations

from repro.adversary.adaptive import AdaptiveAdversary, CorruptionPlan
from repro.adversary.base import HonestWithInput
from repro.adversary.strategies import CrashStrategy, EquivocatingStrategy
from repro.analysis.parameters import derive_parameters
from repro.analysis.range_analysis import validity_margin
from repro.core.delphi import DelphiNode
from repro.net.latency import UniformLatency
from repro.net.network import AsynchronousNetwork, DeliveryPolicy
from repro.runner import run_delphi
from repro.workloads.bitcoin import BitcoinPriceFeed


def adversarial_network(n: int, extra_delay: float, seed: int) -> AsynchronousNetwork:
    """A network whose scheduler delays and reorders honest traffic."""
    return AsynchronousNetwork(
        num_nodes=n,
        latency=UniformLatency(low=0.002, high=0.02, seed=seed),
        policy=DeliveryPolicy(max_extra_delay=extra_delay, reorder=True, seed=seed),
    )


def main() -> None:
    n, t = 10, 3
    params = derive_parameters(n=n, epsilon=2.0, rho0=2.0, delta_max=500.0, max_rounds=7)
    feed = BitcoinPriceFeed(seed=17)
    measurements = feed.node_inputs(n)
    honest_by_scenario = {}

    scenarios = {}

    # Scenario 1: no faults.
    scenarios["no faults"] = ({}, 0.0, list(range(n)))

    # Scenario 2: t crash faults chosen at random by an adaptive adversary.
    adversary = AdaptiveAdversary(n=n, t=t, seed=3)
    plan = adversary.corrupt_random(strategy_factory=CrashStrategy)
    scenarios["crash x3"] = (
        adversary.strategies(),
        0.0,
        [i for i in range(n) if i not in plan.node_ids],
    )

    # Scenario 3: poisoned inputs — Byzantine nodes claim absurd prices.
    poisoned = {
        7: HonestWithInput(DelphiNode(7, params, value=measurements[7] + 400.0)),
        8: HonestWithInput(DelphiNode(8, params, value=measurements[8] - 400.0)),
        9: CrashStrategy(),
    }
    scenarios["poisoned inputs"] = (poisoned, 0.0, list(range(7)))

    # Scenario 4: equivocation plus 50 ms of adversarial delay on every link.
    equivocators = {
        8: EquivocatingStrategy(),
        9: EquivocatingStrategy(),
    }
    scenarios["equivocation + delay"] = (equivocators, 0.05, list(range(8)))

    print(f"oracle inputs: min {min(measurements):.2f} $, max {max(measurements):.2f} $")
    print(f"configuration: {params.describe()}\n")
    print(f"{'scenario':<24}{'decided':>9}{'spread $':>10}{'excursion $':>13}{'runtime s':>11}")

    for name, (byzantine, extra_delay, honest_ids) in scenarios.items():
        result = run_delphi(
            params,
            measurements,
            byzantine=dict(byzantine),
            network=adversarial_network(n, extra_delay, seed=11),
        )
        honest_inputs = [measurements[i] for i in honest_ids]
        excursion = validity_margin(result.output_values, honest_inputs)
        honest_by_scenario[name] = result
        print(
            f"{name:<24}{str(result.all_decided):>9}{result.output_spread:>10.3f}"
            f"{excursion:>13.3f}{result.runtime_seconds:>11.3f}"
        )

    print("\nIn every scenario the honest nodes terminate, agree within epsilon and "
          "stay inside the relaxed validity range — the guarantees of Definition II.1.")


if __name__ == "__main__":
    main()
