#!/usr/bin/env python3
"""Quickstart: reach approximate agreement among a small sensor network.

This is the smallest end-to-end use of the public API:

1. generate one round of noisy sensor measurements,
2. derive Delphi's parameters from the application's accuracy needs,
3. run the protocol through the deterministic simulator (with one crashed
   node, because fault tolerance is the whole point), and
4. inspect the outputs: every honest node's output is within ``epsilon`` of
   every other's, and within the relaxed range of honest inputs.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.adversary.strategies import CrashStrategy
from repro.analysis.parameters import derive_parameters
from repro.runner import run_delphi
from repro.workloads.sensors import SensorGridWorkload


def main() -> None:
    # A grid of 10 temperature sensors measuring the same room (24.8 C), each
    # with ~0.3 C of measurement noise.
    num_sensors = 10
    workload = SensorGridWorkload(true_value=24.8, seed=7)
    measurements = workload.node_inputs(num_sensors)
    print("sensor measurements:")
    for sensor, value in enumerate(measurements):
        print(f"  sensor {sensor}: {value:8.3f} C")

    # The application wants outputs within 0.1 C of each other and knows the
    # honest spread never exceeds ~4 C (delta_max); rho0 defaults to epsilon.
    params = derive_parameters(
        n=num_sensors,
        epsilon=0.1,
        delta_max=4.0,
        max_rounds=8,  # simulation-scale cap; see DESIGN.md
    )
    print("\nDelphi configuration:", params.describe())

    # One sensor has crashed; the protocol tolerates up to t = 3 faults here.
    byzantine = {9: CrashStrategy()}

    result = run_delphi(params, measurements, byzantine=byzantine)

    print("\nhonest outputs:")
    for node_id, output in sorted(result.outputs.items()):
        print(f"  node {node_id}: {output:8.3f} C")
    print(f"\nall honest nodes decided: {result.all_decided}")
    print(f"output spread           : {result.output_spread:.4f} C (epsilon = {params.epsilon})")
    print(f"honest input range      : [{min(measurements[:9]):.3f}, {max(measurements[:9]):.3f}]")
    print(f"messages exchanged      : {result.message_count}")
    print(f"traffic                 : {result.total_megabytes:.3f} MB")
    print(f"simulated runtime       : {result.runtime_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
