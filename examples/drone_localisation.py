#!/usr/bin/env python3
"""Drone swarm example: Byzantine-tolerant object localisation (Section VI-B).

A swarm of surveillance drones detects a car with an onboard object detector
and estimates its position from the detection plus GPS.  Individual
estimates are noisy (detector IoU ~ Gamma, GPS error per the FAA report) and
some drones may be faulty, so the swarm agrees on the location with two
Delphi instances — one per coordinate — exactly as the paper describes, over
the Raspberry-Pi CPS testbed model.

Run with::

    python examples/drone_localisation.py
"""

from __future__ import annotations

from repro.adversary.base import HonestWithInput
from repro.adversary.strategies import CrashStrategy
from repro.analysis.parameters import derive_parameters
from repro.core.delphi import DelphiNode
from repro.runner import run_delphi
from repro.testbed.cps import CpsTestbed
from repro.workloads.drone import DroneLocalisationWorkload


def main() -> None:
    num_drones = 10
    true_location = (132.5, 74.0)  # metres, ground truth (unknown to drones)

    workload = DroneLocalisationWorkload(true_location=true_location, seed=11)
    xs, ys = workload.node_inputs(num_drones)

    print("per-drone location estimates (x, y) in metres:")
    for drone in range(num_drones):
        print(f"  drone {drone}: ({xs[drone]:8.2f}, {ys[drone]:8.2f})")

    # Paper configuration for this application: epsilon = rho0 = 0.5 m,
    # Delta = 50 m.
    params = derive_parameters(
        n=num_drones,
        epsilon=0.5,
        rho0=0.5,
        delta_max=50.0,
        max_rounds=8,  # simulation-scale cap; see DESIGN.md
    )
    print("\nDelphi configuration:", params.describe())

    testbed = CpsTestbed(num_nodes=num_drones, seed=3)

    # Fault injection: drone 8 has crashed, drone 9 reports a location 40 m
    # away (a spoofed detection) while following the protocol honestly.
    byzantine_x = {
        8: CrashStrategy(),
        9: HonestWithInput(DelphiNode(9, params, value=xs[9] + 40.0)),
    }
    byzantine_y = {
        8: CrashStrategy(),
        9: HonestWithInput(DelphiNode(9, params, value=ys[9] - 40.0)),
    }

    result_x = run_delphi(
        params, xs, byzantine=byzantine_x, network=testbed.network(), compute=testbed.compute()
    )
    result_y = run_delphi(
        params, ys, byzantine=byzantine_y, network=testbed.network(), compute=testbed.compute()
    )

    agreed_x = sum(result_x.output_values) / len(result_x.output_values)
    agreed_y = sum(result_y.output_values) / len(result_y.output_values)

    print("\nagreement results (per coordinate):")
    print(f"  x: spread {result_x.output_spread:.3f} m, agreed ~{agreed_x:8.2f} m")
    print(f"  y: spread {result_y.output_spread:.3f} m, agreed ~{agreed_y:8.2f} m")
    print(f"  ground truth          : ({true_location[0]:.2f}, {true_location[1]:.2f}) m")
    error = ((agreed_x - true_location[0]) ** 2 + (agreed_y - true_location[1]) ** 2) ** 0.5
    print(f"  localisation error    : {error:.2f} m despite 2 faulty drones")
    print(f"  simulated runtime     : {max(result_x.runtime_seconds, result_y.runtime_seconds):.2f} s on the CPS model")
    print(f"  traffic (both coords) : {result_x.total_megabytes + result_y.total_megabytes:.2f} MB")


if __name__ == "__main__":
    main()
