#!/usr/bin/env python3
"""Oracle network example: attested Bitcoin price reports (paper Section V/VI-A).

The pipeline mirrors the paper's first application end to end:

1. **Range analysis** — observe two (simulated) days of per-minute price
   feeds from ten exchanges, fit the per-minute inter-exchange range and
   derive the maximum-range bound ``Delta`` (Fig. 4's analysis).
2. **Configuration** — set ``epsilon = rho0 = 2$`` and ``Delta`` from the
   analysis, as the paper does.
3. **Reporting rounds** — every minute, each oracle queries an exchange and
   the network runs Delphi + DORA over the geo-distributed AWS testbed
   model, producing a single attested price that is submitted to the SMR
   (blockchain) channel.

Run with::

    python examples/oracle_network.py
"""

from __future__ import annotations

from repro.analysis.parameters import derive_parameters
from repro.analysis.range_analysis import analyse_ranges
from repro.oracle.network import OracleNetwork
from repro.testbed.aws import AwsTestbed
from repro.workloads.bitcoin import BitcoinPriceFeed


def main() -> None:
    num_oracles = 10

    # ------------------------------------------------------------------
    # 1. Range analysis over historical (synthetic) data.
    # ------------------------------------------------------------------
    history = BitcoinPriceFeed(seed=2024)
    observed_ranges = history.observed_ranges(num_nodes=num_oracles, minutes=2 * 24 * 60)
    stats = analyse_ranges(observed_ranges, thresholds=(30.0, 100.0, 300.0), security_bits=30)
    print("range analysis over 2 days of per-minute data:")
    print(f"  mean delta          : {stats.mean:8.2f} $")
    print(f"  99th percentile     : {stats.p99:8.2f} $")
    print(f"  max observed        : {stats.maximum:8.2f} $")
    for threshold, fraction in stats.fraction_below.items():
        print(f"  below {threshold:6.0f} $      : {100 * fraction:6.2f} % of minutes")
    if stats.fit is not None:
        print(f"  best fitting law    : {stats.fit.name}")
    print(f"  recommended Delta   : {stats.recommended_delta:8.2f} $")

    # ------------------------------------------------------------------
    # 2. Configure Delphi as the paper does (epsilon = rho0 = 2$).
    # ------------------------------------------------------------------
    delta_max = max(stats.recommended_delta, 500.0)
    params = derive_parameters(
        n=num_oracles,
        epsilon=2.0,
        rho0=2.0,
        delta_max=delta_max,
        max_rounds=8,  # simulation-scale cap; see DESIGN.md
    )
    print("\nDelphi configuration:", params.describe())

    # ------------------------------------------------------------------
    # 3. Run a few reporting rounds over the AWS testbed model.
    # ------------------------------------------------------------------
    testbed = AwsTestbed(num_nodes=num_oracles, seed=7)
    network = OracleNetwork(
        params, network_factory=testbed.network, compute=testbed.compute()
    )
    live_feed = BitcoinPriceFeed(seed=99)

    print("\nper-minute attested reports:")
    for minute in range(3):
        measurements = live_feed.node_inputs(num_oracles)
        report = network.report_round(measurements)
        honest_low, honest_high = min(measurements), max(measurements)
        print(
            f"  minute {minute + 1}: attested {report.value:10.2f} $ "
            f"(inputs [{honest_low:10.2f}, {honest_high:10.2f}], "
            f"{report.certificate.signer_count} signers, "
            f"{report.runtime_seconds:5.2f} s simulated, "
            f"{report.total_megabytes:6.2f} MB)"
        )

    consumed = network.chain.first_valid()
    print(f"\nblockchain consumed report at position {consumed.position}: "
          f"{consumed.payload.value:.2f} $")
    distinct_total = len({e.payload.value for e in network.chain.entries if e.valid})
    print(f"distinct values posted across {live_feed.minute} reporting rounds: "
          f"{distinct_total} (Delphi posts at most 2 per round)")


if __name__ == "__main__":
    main()
